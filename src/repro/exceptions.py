"""Exception hierarchy shared by every subpackage of :mod:`repro`.

Keeping the exceptions in a single module lets callers catch a single base
class (:class:`ReproError`) regardless of which subsystem raised the error,
while still being able to discriminate on the concrete subclass when they
need to.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the :mod:`repro` library."""


class GraphError(ReproError):
    """Base class for errors raised by the bipartite graph substrate."""


class VertexNotFoundError(GraphError, KeyError):
    """A vertex referenced by the caller does not exist in the graph."""

    def __init__(self, side: str, vertex: object) -> None:
        super().__init__(f"vertex {vertex!r} not present on side {side!r}")
        self.side = side
        self.vertex = vertex


class DuplicateVertexError(GraphError, ValueError):
    """A vertex was added twice to the same side of a bipartite graph."""

    def __init__(self, side: str, vertex: object) -> None:
        super().__init__(f"vertex {vertex!r} already present on side {side!r}")
        self.side = side
        self.vertex = vertex


class InvalidEdgeError(GraphError, ValueError):
    """An edge references a missing endpoint or violates bipartiteness."""


class GraphFormatError(GraphError, ValueError):
    """A graph file or textual description could not be parsed."""


class SolverError(ReproError):
    """Base class for errors raised by MBB solvers."""


class InvalidParameterError(SolverError, ValueError):
    """A solver or generator parameter is outside its valid range."""


class BudgetExceededError(SolverError):
    """An exact solver exhausted its node or time budget.

    The exception carries the best (possibly sub-optimal) result found so
    far so that benchmark harnesses can still report progress for runs that
    hit their cut-off, mirroring the 4-hour timeout rows in the paper.
    """

    def __init__(self, message: str, best=None) -> None:
        super().__init__(message)
        self.best = best


class DatasetError(ReproError):
    """A named workload or dataset stand-in could not be produced."""
