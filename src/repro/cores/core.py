"""Classical core decomposition on bipartite graphs.

The decomposition treats the bipartite graph as an ordinary graph: the core
number of a vertex is the largest ``k`` such that the vertex survives in a
subgraph of minimum degree ``k``.  The implementation is the linear-time
bucket-peeling algorithm of Batagelj and Zaveršnik, which the paper relies
on for its Lemma 4/5 reductions and its degeneracy-order ablation (``bd5``).

Vertices are addressed as ``(side, label)`` pairs throughout this module so
left/right label collisions cannot occur.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.graph.bipartite import LEFT, RIGHT, BipartiteGraph, Vertex

VertexKey = Tuple[str, Vertex]


def _all_vertex_keys(graph: BipartiteGraph) -> List[VertexKey]:
    keys: List[VertexKey] = [(LEFT, u) for u in graph.left_vertices()]
    keys.extend((RIGHT, v) for v in graph.right_vertices())
    return keys


def _degree(graph: BipartiteGraph, key: VertexKey) -> int:
    side, label = key
    if side == LEFT:
        return graph.degree_left(label)
    return graph.degree_right(label)


def _neighbors(graph: BipartiteGraph, key: VertexKey) -> List[VertexKey]:
    side, label = key
    if side == LEFT:
        return [(RIGHT, v) for v in graph.neighbors_left(label)]
    return [(LEFT, u) for u in graph.neighbors_right(label)]


def core_numbers(graph: BipartiteGraph) -> Dict[VertexKey, int]:
    """Core number of every vertex, keyed by ``(side, label)``.

    Runs in ``O(|V| + |E|)`` using bucket peeling: repeatedly remove a
    vertex of minimum remaining degree; its core number is the largest
    minimum degree seen up to that point.
    """
    keys = _all_vertex_keys(graph)
    if not keys:
        return {}
    degree = {key: _degree(graph, key) for key in keys}
    max_degree = max(degree.values(), default=0)
    buckets: List[List[VertexKey]] = [[] for _ in range(max_degree + 1)]
    for key, d in degree.items():
        buckets[d].append(key)

    core: Dict[VertexKey, int] = {}
    removed = set()
    current = 0
    processed = 0
    pointer = 0
    total = len(keys)
    while processed < total:
        # Find the lowest non-empty bucket at or below `pointer`; degrees can
        # only decrease, so the scan is amortised linear.
        while pointer <= max_degree and not buckets[pointer]:
            pointer += 1
        if pointer > max_degree:
            break
        key = buckets[pointer].pop()
        if key in removed or degree[key] != pointer:
            # Stale bucket entry (vertex moved to a lower bucket after a
            # neighbour was peeled); skip it.
            continue
        current = max(current, pointer)
        core[key] = current
        removed.add(key)
        processed += 1
        for neighbour in _neighbors(graph, key):
            if neighbour in removed:
                continue
            d = degree[neighbour]
            if d > pointer:
                degree[neighbour] = d - 1
                buckets[d - 1].append(neighbour)
        if pointer > 0:
            pointer -= 1
    return core


def degeneracy(graph: BipartiteGraph) -> int:
    """Degeneracy ``δ(G)``: the maximum core number (0 for an empty graph)."""
    numbers = core_numbers(graph)
    return max(numbers.values(), default=0)


def degeneracy_order(graph: BipartiteGraph) -> List[VertexKey]:
    """A degeneracy (smallest-degree-last peeling) order of all vertices.

    The returned list is a permutation of all ``(side, label)`` keys such
    that each vertex has the minimum degree in the subgraph induced by
    itself and the vertices after it.
    """
    keys = _all_vertex_keys(graph)
    if not keys:
        return []
    degree = {key: _degree(graph, key) for key in keys}
    max_degree = max(degree.values(), default=0)
    buckets: List[List[VertexKey]] = [[] for _ in range(max_degree + 1)]
    for key, d in degree.items():
        buckets[d].append(key)
    order: List[VertexKey] = []
    removed = set()
    pointer = 0
    total = len(keys)
    while len(order) < total:
        while pointer <= max_degree and not buckets[pointer]:
            pointer += 1
        if pointer > max_degree:
            break
        key = buckets[pointer].pop()
        if key in removed or degree[key] != pointer:
            continue
        order.append(key)
        removed.add(key)
        for neighbour in _neighbors(graph, key):
            if neighbour in removed:
                continue
            d = degree[neighbour]
            if d > 0:
                degree[neighbour] = d - 1
                buckets[d - 1].append(neighbour)
        if pointer > 0:
            pointer -= 1
    return order


def k_core(graph: BipartiteGraph, k: int) -> BipartiteGraph:
    """The maximal subgraph in which every vertex has degree at least ``k``.

    This is the reduction of Lemma 4: a balanced biclique with side size
    ``>= k`` can only live inside the ``k``-core, so vertices outside it can
    be discarded without losing the optimum.
    """
    if k <= 0:
        return graph.copy()
    numbers = core_numbers(graph)
    left = {u for u in graph.left_vertices() if numbers.get((LEFT, u), 0) >= k}
    right = {v for v in graph.right_vertices() if numbers.get((RIGHT, v), 0) >= k}
    return graph.induced_subgraph(left, right)
