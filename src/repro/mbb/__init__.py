"""Exact maximum balanced biclique algorithms (the paper's contribution).

Public entry points:

* :func:`~repro.mbb.solver.solve_mbb` / :func:`~repro.mbb.solver.maximum_balanced_biclique`
  — the one-call API that auto-selects between the two algorithms below.
  Both are thin wrappers over the service layer in :mod:`repro.api`
  (backend registry, :class:`~repro.api.SolveRequest` /
  :class:`~repro.api.SolveReport` JSON wire format, and the
  batch-parallel :class:`~repro.api.MBBEngine`); use the engine directly
  for structured requests, JSON reports or process-pool batches.
* :func:`~repro.mbb.dense.dense_mbb` — Algorithm 3 (``denseMBB``) for dense
  bipartite graphs.
* :func:`~repro.mbb.sparse.hbv_mbb` — Algorithm 4 (``hbvMBB``/``sparseMBB``)
  for large sparse bipartite graphs, with :class:`~repro.mbb.sparse.SparseConfig`
  exposing every ablation switch of the paper's Table 3.
* :func:`~repro.mbb.basic_bb.basic_bb` — Algorithm 1, the unoptimised
  enumeration kept as a reference.
* :func:`~repro.mbb.size_constrained.size_constrained_mbb` — MBB through
  rising ``(k, k)`` size-constrained decisions on the bitset kernel (the
  registry's ``size-constrained`` backend).

Kernel selection: both exact solvers default to the indexed bitset kernel
(:data:`~repro.mbb.dense.KERNEL_BITS`), which runs the branch and bound on
:class:`~repro.graph.bitset.IndexedBitGraph` masks; for the sparse
framework the same switch also governs the bridging stage (S2), whose
core decomposition, degeneracy pruning and local greedy run on masks.
Pass ``kernel=`` :data:`~repro.mbb.dense.KERNEL_SETS` (or
``SparseConfig(kernel="sets")``) for the original adjacency-set
implementation, kept for ablations and as a fallback.

Lemma 5 note: the S1 early exit of the sparse framework compares the
incumbent side size against the degeneracy of the graph *before* the
Lemma 4 core reduction (``δ(G) <= |A*|`` proves optimality); comparing
against the reduced graph's degeneracy can never succeed because a nonempty
``(k + 1)``-core has degeneracy above ``k``.
"""

from repro.mbb.basic_bb import basic_bb
from repro.mbb.bounds import degree_upper_bound
from repro.mbb.context import SearchContext
from repro.mbb.dense import (
    BRANCH_NAIVE,
    BRANCH_TRIVIALITY_LAST,
    KERNEL_BITS,
    KERNEL_SETS,
    dense_mbb,
)
from repro.mbb.heuristics import (
    core_heuristic,
    core_heuristic_bits,
    degree_heuristic,
    greedy_extend,
    greedy_extend_bits,
    h_mbb,
)
from repro.mbb.polynomial import (
    is_polynomially_solvable,
    maximum_balanced_biclique_near_complete,
)
from repro.mbb.result import (
    Biclique,
    MBBResult,
    SearchStats,
    STEP_BRIDGE,
    STEP_HEURISTIC,
    STEP_VERIFY,
)
from repro.mbb.size_constrained import (
    find_biclique_of_size,
    has_biclique_of_size,
    maximal_biclique_profile,
    size_constrained_mbb,
)
from repro.mbb.solver import (
    METHOD_AUTO,
    METHOD_BASIC,
    METHOD_DENSE,
    METHOD_SPARSE,
    choose_method,
    maximum_balanced_biclique,
    solve_mbb,
)
from repro.mbb.sparse import (
    CONFIG_FULL,
    SparseConfig,
    VARIANT_CONFIGS,
    hbv_mbb,
    sparse_mbb,
    variant,
    variant_with_budget,
)

__all__ = [
    "Biclique",
    "MBBResult",
    "SearchStats",
    "SearchContext",
    "STEP_HEURISTIC",
    "STEP_BRIDGE",
    "STEP_VERIFY",
    "basic_bb",
    "dense_mbb",
    "BRANCH_NAIVE",
    "BRANCH_TRIVIALITY_LAST",
    "KERNEL_BITS",
    "KERNEL_SETS",
    "hbv_mbb",
    "sparse_mbb",
    "SparseConfig",
    "CONFIG_FULL",
    "VARIANT_CONFIGS",
    "variant",
    "variant_with_budget",
    "solve_mbb",
    "maximum_balanced_biclique",
    "choose_method",
    "METHOD_AUTO",
    "METHOD_DENSE",
    "METHOD_SPARSE",
    "METHOD_BASIC",
    "degree_heuristic",
    "core_heuristic",
    "core_heuristic_bits",
    "greedy_extend",
    "greedy_extend_bits",
    "h_mbb",
    "is_polynomially_solvable",
    "maximum_balanced_biclique_near_complete",
    "degree_upper_bound",
    "find_biclique_of_size",
    "has_biclique_of_size",
    "maximal_biclique_profile",
    "size_constrained_mbb",
]
