"""Bicore decomposition, bidegeneracy and the bidegeneracy order.

These implement the paper's novel sparsity machinery (Definitions 3-5,
Algorithm 7, Lemma 10):

* the **bicore number** ``bc(u)`` is the core number computed with respect
  to ``N_{<=2}`` neighbourhoods instead of plain neighbourhoods;
* the **bidegeneracy** ``δ̈(G)`` is the maximum bicore number;
* the **bidegeneracy order** peels vertices by smallest remaining
  ``|N_{<=2}|``, breaking ties by smallest remaining 1-hop degree — the
  tie-break of Lemma 10, which keeps the decomposition linear in
  ``M = sum_u |N_{<=2}(u)|``.

Three interchangeable implementations sit behind the ``impl=`` switch;
all three peel the *materialised* ``N_{<=2}`` graph with the identical
priority ``(|N_{<=2}|, 1-hop degree, vertex id)`` — the id being the
position in the deterministic :class:`~repro.graph.csr.CSRBipartite`
ordering (left before right, ``repr``-sorted per side) — so they produce
the *same bicore numbers and the same peel order*:

* :data:`IMPL_BUCKET` (the default): the flat engine of Algorithm 7.  The
  graph is indexed once into CSR form, ``N_{<=2}`` is materialised as flat
  int arrays (:func:`~repro.cores.two_hop.n_le2_flat`) and the peel runs
  on a two-level bucket structure — level one indexed by remaining
  ``|N_{<=2}|``, level two by remaining 1-hop degree — so every update is
  O(1) bucket bookkeeping instead of a heap push.  Each ``(size, degree)``
  cell is a vertex bitmask: clearing the lowest set bit pops the
  smallest-id member, which is what realises the deterministic third-level
  tie-break in one C-level integer operation, in the same packed-integer
  idiom as the branch-and-bound kernels of :mod:`repro.graph.bitset`
  (see :func:`_peel_bucket_flat` for the exact cost model).
* :data:`IMPL_HEAP`: the pre-flat implementation, kept as the ablation
  the ``peel_rows`` of ``BENCH_kernels.json`` measure against — a
  lazy-deletion binary heap over the dict-of-sets ``N_{<=2}`` adjacency,
  ``O(M log M)`` with heavy per-entry constants (tuple keys, hashing).
* :data:`IMPL_EXACT`: the test oracle.  No decremented counters, no
  bucket or heap: each step recounts every remaining ``|N_{<=2}(u)|`` and
  1-hop degree among the survivors from scratch and takes the minimum,
  ``O(n * M)``.  Because it shares the selection rule bit for bit, it
  validates the fast peels' *orders*, not just their bicore numbers.

Semantics note: the peel removes vertices from the ``N_{<=2}`` graph
materialised once up front (each removal lowers a neighbour's count by
exactly one).  Re-deriving 2-hop neighbourhoods on the *residual bipartite
graph* instead is a subtly different process — removing a vertex can also
sever 2-hop pairs it was the only common neighbour of, lowering a count by
more than one — and can legitimately peel ties in a different order.  The
two agree on bicore numbers and bidegeneracy on every graph we test;
:func:`residual_bicore_numbers` keeps that re-deriving reference around
precisely for that cross-check.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Set, Tuple

from repro.exceptions import InvalidParameterError
from repro.graph.bipartite import LEFT, RIGHT, BipartiteGraph, Vertex
from repro.graph.buffers import IntBuffer, buffer_view, mutable_int_buffer
from repro.graph.csr import CSRBipartite
from repro.cores.two_hop import n_le2_adjacency, n_le2_flat

VertexKey = Tuple[str, Vertex]

#: Flat two-level bucket peel (Algorithm 7), the default.
IMPL_BUCKET = "bucket"
#: Lazy-deletion heap over the dict-of-sets adjacency (ablation).
IMPL_HEAP = "heap"
#: Naive recount-everything oracle (tests only, ``O(n * M)``).
IMPL_EXACT = "exact"

#: All peel implementations, fastest first.
ALL_IMPLS = (IMPL_BUCKET, IMPL_HEAP, IMPL_EXACT)


def _tie_break(key: VertexKey) -> Tuple[str, str]:
    """The canonical deterministic tie-break: ``(side, repr(label))``.

    Comparing two keys by this tuple is exactly comparing their dense
    :class:`CSRBipartite` ids, so the key-space peels (heap) and the
    id-space peels (bucket, exact) break ties identically.
    """
    side, label = key
    return (side, repr(label))


# ----------------------------------------------------------------------
# the flat engine (bucket peel and the id-space oracle)
# ----------------------------------------------------------------------
def _peel_bucket_flat(
    csr: CSRBipartite, le2_ptr: IntBuffer, le2: IntBuffer
) -> Tuple[List[int], List[int]]:
    """Two-level bucket peel over flat arrays; returns id-space results.

    ``cells[s][d]`` is the bitmask of alive vertices with remaining
    ``|N_{<=2}| == s`` and remaining 1-hop degree ``d``; ``deg_mask[s]``
    is a bitmask over ``d`` marking the non-empty cells of level ``s``, so
    the minimum occupied ``(s, d)`` cell is one lowest-set-bit extraction
    away.  The level-one pointer ``s_ptr`` only ever backs up by one per
    pop (a removal lowers a neighbour's size by exactly one), which is the
    classic Batagelj-Zaveršnik amortisation: total pointer movement is
    ``O(n + max |N_{<=2}|)``.

    The vertex bitmasks are what buy the deterministic smallest-id
    tie-break in O(1) *selections*; the price is that each cell update is
    an ``n``-bit integer operation — ``O(n / 64)`` machine words in a
    single C-level pass — so total work is ``O(M * n / 64)`` rather than
    strictly ``O(M)``.  At the scales a pure-Python reproduction runs
    (thousands of vertices, so a handful of words per update) the masks
    are far cheaper than per-update heap pushes or linked-list cells with
    an extra ordering structure; a production implementation at ``n`` in
    the millions would swap the cells for intrusive doubly-linked lists
    and give up the cross-impl order equality.
    """
    n = csr.num_vertices
    num_left = csr.num_left
    indptr = buffer_view(csr.indptr)
    le2_ptr = buffer_view(le2_ptr)
    le2 = buffer_view(le2)
    # Working arrays follow the active backend; every value read back out
    # is int()-coerced before it feeds a shift or a dict key (numpy int64
    # would overflow `1 << d` past 62 — the cells are Python bignums).
    size = mutable_int_buffer(
        int(le2_ptr[i + 1]) - int(le2_ptr[i]) for i in range(n)
    )
    deg = mutable_int_buffer(int(indptr[i + 1]) - int(indptr[i]) for i in range(n))

    cells: Dict[int, Dict[int, int]] = {}
    deg_mask: Dict[int, int] = {}
    for i in range(n):
        s, d = int(size[i]), int(deg[i])
        level = cells.setdefault(s, {})
        cell = level.get(d, 0)
        if not cell:
            deg_mask[s] = deg_mask.get(s, 0) | (1 << d)
        level[d] = cell | (1 << i)

    alive = bytearray([1]) * n
    bicore = [0] * n
    order: List[int] = []
    current = 0
    s_ptr = 0
    processed = 0
    while processed < n:
        mask = deg_mask.get(s_ptr, 0)
        while not mask:
            s_ptr += 1
            mask = deg_mask.get(s_ptr, 0)
        s = s_ptr
        d = (mask & -mask).bit_length() - 1
        level = cells[s]
        cell = level[d]
        i = (cell & -cell).bit_length() - 1  # smallest alive id in the cell
        cell &= cell - 1
        level[d] = cell
        if not cell:
            deg_mask[s] = mask & ~(1 << d)
        if s > current:
            current = s
        bicore[i] = current
        order.append(i)
        alive[i] = 0
        processed += 1
        i_left = i < num_left
        for j in le2[le2_ptr[i] : le2_ptr[i + 1]]:
            j = int(j)
            if not alive[j]:
                continue
            sj = int(size[j])
            dj = int(deg[j])
            level = cells[sj]
            cell = level[dj] & ~(1 << j)
            level[dj] = cell
            if not cell:
                deg_mask[sj] &= ~(1 << dj)
            sj -= 1
            size[j] = sj
            if i_left != (j < num_left):
                dj -= 1
                deg[j] = dj
            level = cells.setdefault(sj, {})
            cell = level.get(dj, 0)
            if not cell:
                deg_mask[sj] = deg_mask.get(sj, 0) | (1 << dj)
            level[dj] = cell | (1 << j)
        if s_ptr > 0:
            s_ptr -= 1
    return bicore, order


def _peel_exact_flat(
    csr: CSRBipartite, le2_ptr: IntBuffer, le2: IntBuffer
) -> Tuple[List[int], List[int]]:
    """Oracle peel: recount every remaining key from scratch per step.

    Recounting needs no side information, no decremented counters and no
    selection structure, which is what makes it an independent oracle of
    the bucket and heap peels.
    """
    n = csr.num_vertices
    indptr = buffer_view(csr.indptr)
    indices = buffer_view(csr.indices)
    le2_ptr = buffer_view(le2_ptr)
    le2 = buffer_view(le2)
    alive = bytearray([1]) * n
    bicore = [0] * n
    order: List[int] = []
    current = 0
    for _ in range(n):
        best = None
        for i in range(n):
            if not alive[i]:
                continue
            s = sum(alive[j] for j in le2[le2_ptr[i] : le2_ptr[i + 1]])
            d = sum(alive[j] for j in indices[indptr[i] : indptr[i + 1]])
            candidate = (s, d, i)
            if best is None or candidate < best:
                best = candidate
        assert best is not None
        s, _, i = best
        if s > current:
            current = s
        bicore[i] = current
        order.append(i)
        alive[i] = 0
    return bicore, order


def _peel_flat(
    graph: BipartiteGraph, peel, prepared=None
) -> Tuple[Dict[VertexKey, int], List[VertexKey]]:
    """Run a flat-engine peel and translate ids back to vertex keys.

    When a :class:`~repro.graph.prepared.PreparedGraph` is supplied its
    CSR snapshot and flat ``N_{<=2}`` arrays are reused instead of being
    re-derived — the whole point of preparing a graph once.
    """
    if prepared is not None:
        csr = prepared.csr
        le2_ptr, le2 = prepared.n_le2
    else:
        csr = CSRBipartite.from_bipartite(graph)
        le2_ptr, le2 = n_le2_flat(csr)
    bicore, order = peel(csr, le2_ptr, le2)
    keys = csr.keys
    return (
        {keys[i]: value for i, value in enumerate(bicore)},
        [keys[i] for i in order],
    )


def flat_bicore_decomposition(
    prepared,
) -> Tuple[Dict[VertexKey, int], List[VertexKey]]:
    """Bucket peel over an existing prepared snapshot (no re-indexing).

    This is the entry point :meth:`repro.graph.prepared.PreparedGraph.
    bicore_decomposition` memoises; calling it directly always re-peels.
    """
    return _peel_flat(prepared.graph, _peel_bucket_flat, prepared=prepared)


# ----------------------------------------------------------------------
# the legacy heap peel (ablation)
# ----------------------------------------------------------------------
def _one_hop_degrees(graph: BipartiteGraph) -> Dict[VertexKey, int]:
    degrees: Dict[VertexKey, int] = {}
    for u in graph.left_vertices():
        degrees[(LEFT, u)] = graph.degree_left(u)
    for v in graph.right_vertices():
        degrees[(RIGHT, v)] = graph.degree_right(v)
    return degrees


def _peel_heap(
    graph: BipartiteGraph,
) -> Tuple[Dict[VertexKey, int], List[VertexKey]]:
    """Set-keyed peeling loop returning ``(bicore numbers, peel order)``.

    A lazy-deletion heap keyed by ``(|N_<=2|, |N|, tie-break)`` implements
    the two peeling conditions of Lemma 10 plus the canonical deterministic
    tie-break.  Entries become stale when a neighbour's removal lowers a
    key; stale entries are skipped on pop, which keeps the loop
    ``O(M log M)`` with ``M = sum_u |N_{<=2}(u)|`` — the log factor and
    the per-entry tuple hashing are what the flat bucket engine removes.
    """
    adjacency = n_le2_adjacency(graph)
    one_hop = _one_hop_degrees(graph)
    sizes = {key: len(neigh) for key, neigh in adjacency.items()}
    heap: List[Tuple[int, int, Tuple[str, str], VertexKey]] = [
        (sizes[key], one_hop[key], _tie_break(key), key) for key in adjacency
    ]
    heapq.heapify(heap)

    bicore: Dict[VertexKey, int] = {}
    order: List[VertexKey] = []
    removed: Set[VertexKey] = set()
    current = 0
    while heap:
        size, degree, _, key = heapq.heappop(heap)
        if key in removed:
            continue
        if size != sizes[key] or degree != one_hop[key]:
            continue  # stale entry
        current = max(current, size)
        bicore[key] = current
        order.append(key)
        removed.add(key)
        for neighbour in adjacency[key]:
            if neighbour in removed:
                continue
            adjacency[neighbour].discard(key)
            sizes[neighbour] -= 1
            if key[0] != neighbour[0]:
                # A removed 1-hop neighbour also lowers the plain degree used
                # as the Lemma 10 tie-break.
                one_hop[neighbour] -= 1
            heapq.heappush(
                heap,
                (
                    sizes[neighbour],
                    one_hop[neighbour],
                    _tie_break(neighbour),
                    neighbour,
                ),
            )
    return bicore, order


# ----------------------------------------------------------------------
# public API
# ----------------------------------------------------------------------
def bicore_decomposition(
    graph: BipartiteGraph, *, impl: str = IMPL_BUCKET, prepared=None
) -> Tuple[Dict[VertexKey, int], List[VertexKey]]:
    """Bicore numbers and peel order in one pass.

    Parameters
    ----------
    impl:
        One of :data:`IMPL_BUCKET` (default), :data:`IMPL_HEAP`,
        :data:`IMPL_EXACT`.  All three return identical results; they
        differ only in speed (see the module docstring).
    prepared:
        Optional :class:`~repro.graph.prepared.PreparedGraph` of exactly
        this graph.  The flat engines (bucket, exact) then reuse its CSR
        snapshot and ``N_{<=2}`` arrays instead of re-indexing, and the
        default bucket peel reuses the bundle's memoised decomposition
        (returned as fresh containers, safe from caller mutation).  The
        heap ablation keys on labels and ignores it.  A snapshot built
        from a different graph is rejected.
    """
    if prepared is not None:
        from repro.graph.prepared import ensure_prepared_for

        ensure_prepared_for(prepared, graph)
    if impl == IMPL_BUCKET:
        if prepared is not None:
            numbers, order = prepared.bicore_decomposition()
            return dict(numbers), list(order)
        return _peel_flat(graph, _peel_bucket_flat)
    if impl == IMPL_HEAP:
        return _peel_heap(graph)
    if impl == IMPL_EXACT:
        return _peel_flat(graph, _peel_exact_flat, prepared=prepared)
    raise InvalidParameterError(
        f"unknown bicore impl {impl!r}; expected one of {ALL_IMPLS}"
    )


def bicore_numbers(
    graph: BipartiteGraph, *, impl: str = IMPL_BUCKET, prepared=None
) -> Dict[VertexKey, int]:
    """Bicore number of every vertex, keyed by ``(side, label)``."""
    bicore, _ = bicore_decomposition(graph, impl=impl, prepared=prepared)
    return bicore


def bidegeneracy(
    graph: BipartiteGraph, *, impl: str = IMPL_BUCKET, prepared=None
) -> int:
    """Bidegeneracy ``δ̈(G)``: the maximum bicore number (0 if empty)."""
    numbers = bicore_numbers(graph, impl=impl, prepared=prepared)
    return max(numbers.values(), default=0)


def bidegeneracy_order(
    graph: BipartiteGraph, *, impl: str = IMPL_BUCKET, prepared=None
) -> List[VertexKey]:
    """A bidegeneracy order (Definition 5) of all vertices.

    Every vertex has the smallest remaining ``|N_{<=2}|`` in the subgraph
    induced by itself and the vertices after it in the returned list.
    """
    _, order = bicore_decomposition(graph, impl=impl, prepared=prepared)
    return order


def residual_bicore_numbers(graph: BipartiteGraph) -> Dict[VertexKey, int]:
    """Definition-level reference that re-derives ``N_{<=2}`` per step.

    Unlike the ``impl=`` peels (which remove vertices from the
    ``N_{<=2}`` graph materialised once), this recomputes every 2-hop
    neighbourhood on the residual *bipartite* graph after each removal —
    ``O(n * M)`` and only intended as a semantic cross-check on small
    graphs.  It uses the same canonical tie-break, but because a removal
    can sever 2-hop pairs bridged solely by the removed vertex, its peel
    *order* may differ from the materialised peels on ties; its bicore
    numbers are what tests compare.
    """
    working = graph.copy()
    bicore: Dict[VertexKey, int] = {}
    current = 0
    while working.num_vertices:
        adjacency = n_le2_adjacency(working)
        one_hop = _one_hop_degrees(working)
        key = min(
            adjacency,
            key=lambda k: (len(adjacency[k]), one_hop[k], _tie_break(k)),
        )
        current = max(current, len(adjacency[key]))
        bicore[key] = current
        side, label = key
        if side == LEFT:
            working.remove_left_vertex(label)
        else:
            working.remove_right_vertex(label)
    return bicore
