"""Tests for the sparse framework hbvMBB (Algorithm 4) and its variants."""

from __future__ import annotations

import pytest

from repro.graph.bipartite import BipartiteGraph
from repro.graph.generators import (
    complete_bipartite,
    grid_union_of_bicliques,
    planted_balanced_biclique,
    random_bipartite,
    random_power_law_bipartite,
)
from repro.mbb.context import SearchContext
from repro.mbb.dense import KERNEL_BITS, KERNEL_SETS
from repro.mbb.result import STEP_BRIDGE, STEP_HEURISTIC, STEP_VERIFY
from repro.mbb.sparse import (
    CONFIG_FULL,
    SparseConfig,
    VARIANT_CONFIGS,
    hbv_mbb,
    sparse_mbb,
    variant,
    variant_with_budget,
)
from repro.baselines.brute_force import brute_force_side_size


class TestHbvMBBCorrectness:
    def test_empty_graph(self):
        result = hbv_mbb(BipartiteGraph())
        assert result.side_size == 0
        assert result.optimal

    def test_complete_graph_terminates_at_heuristic_stage(self):
        result = hbv_mbb(complete_bipartite(6, 6))
        assert result.side_size == 6
        assert result.terminated_at == STEP_HEURISTIC

    def test_union_of_blocks(self):
        result = hbv_mbb(grid_union_of_bicliques([5, 3, 2]))
        assert result.side_size == 5

    def test_planted_biclique_in_sparse_background(self):
        graph = planted_balanced_biclique(60, 60, 7, background_density=0.02, seed=3)
        result = hbv_mbb(graph)
        assert result.side_size >= 7

    @pytest.mark.parametrize("seed", range(18))
    def test_matches_brute_force(self, seed, random_graph_factory):
        graph = random_graph_factory(seed, max_side=9)
        result = hbv_mbb(graph)
        assert result.side_size == brute_force_side_size(graph)
        assert result.biclique.is_valid_in(graph)
        assert result.biclique.is_balanced

    @pytest.mark.parametrize("seed", range(6))
    def test_sparse_power_law_graphs(self, seed):
        from repro.mbb.dense import dense_mbb

        graph = random_power_law_bipartite(40, 40, 2.5, seed=seed)
        result = hbv_mbb(graph)
        # Graphs of this size are out of reach for the brute-force oracle;
        # cross-check against the (independently tested) dense solver.
        assert result.side_size == dense_mbb(graph).side_size

    def test_terminating_step_is_always_reported(self):
        for seed in range(5):
            graph = random_bipartite(10, 10, 0.3, seed=seed)
            result = hbv_mbb(graph)
            assert result.terminated_at in (STEP_HEURISTIC, STEP_BRIDGE, STEP_VERIFY)


class TestVariants:
    @pytest.mark.parametrize("name", sorted(VARIANT_CONFIGS))
    def test_every_variant_is_exact(self, name):
        for seed in range(5):
            graph = random_bipartite(8, 8, 0.45, seed=seed)
            optimum = brute_force_side_size(graph)
            result = hbv_mbb(graph, config=variant(name))
            assert result.side_size == optimum, (name, seed)

    def test_variant_lookup_errors(self):
        with pytest.raises(KeyError):
            variant("bd99")

    def test_variant_with_budget(self):
        config = variant_with_budget("bd2", time_budget=1.5)
        assert config.time_budget == 1.5
        assert not config.use_core_pruning

    def test_bd2_falls_back_to_degree_order(self):
        config = variant("bd2")
        assert config.effective_order == "degree"

    def test_bd3_uses_naive_branching(self):
        from repro.mbb.dense import BRANCH_NAIVE

        assert variant("bd3").branching == BRANCH_NAIVE


class TestKernelSelection:
    """``SparseConfig.kernel`` governs both the bridging and verification stages."""

    @pytest.mark.parametrize("seed", range(10))
    def test_kernels_return_identical_results(self, seed):
        graph = random_bipartite(12, 12, 0.4, seed=seed)
        bits = hbv_mbb(graph, config=SparseConfig(kernel=KERNEL_BITS))
        sets = hbv_mbb(graph, config=SparseConfig(kernel=KERNEL_SETS))
        assert bits.side_size == sets.side_size
        assert bits.biclique == sets.biclique
        assert bits.optimal and sets.optimal
        assert bits.terminated_at == sets.terminated_at

    @pytest.mark.parametrize("seed", range(4))
    def test_kernels_agree_on_power_law_graphs(self, seed):
        graph = random_power_law_bipartite(35, 35, 2.5, seed=seed)
        bits = hbv_mbb(graph, config=SparseConfig(kernel=KERNEL_BITS))
        sets = hbv_mbb(graph, config=SparseConfig(kernel=KERNEL_SETS))
        assert bits.side_size == sets.side_size


class TestStageBudgets:
    """Budgets fire in S1/S2, not just inside the dense kernel (S3)."""

    def test_cancel_mid_s2_reports_best_effort_not_exhaustion(self):
        # Seed 0 is one where S1 neither proves optimality nor empties the
        # residual graph, so the bridging stage actually runs.
        graph = random_power_law_bipartite(40, 40, 3.0, seed=0)
        context = SearchContext()
        # Fire once the bridging stage has generated a few subgraphs; S1
        # does not touch this counter, so the hook cannot fire earlier.
        context.cancel_hook = lambda: context.stats.subgraphs_generated >= 3
        result = hbv_mbb(graph, context=context)
        assert not result.optimal
        assert result.terminated_at == STEP_BRIDGE
        assert context.stats.subgraphs_generated == 3
        assert result.biclique.is_valid_in(graph)

    def test_cancel_before_s1_reports_heuristic_stage(self):
        graph = random_bipartite(10, 10, 0.4, seed=4)
        context = SearchContext()
        context.cancel()
        result = hbv_mbb(graph, context=context)
        assert not result.optimal
        assert result.terminated_at == STEP_HEURISTIC

    def test_expired_deadline_aborts_during_s2_for_bd1(self):
        import time

        # With the heuristic stage disabled the first checkpoint that can
        # observe the expired deadline is S2's; the solve must still return
        # a (trivial) best-effort result instead of claiming optimality.
        graph = random_bipartite(15, 15, 0.3, seed=5)
        context = SearchContext()
        context.deadline = time.perf_counter() - 1.0
        result = hbv_mbb(
            graph, config=SparseConfig(use_heuristic=False), context=context
        )
        assert not result.optimal
        assert result.terminated_at == STEP_BRIDGE


class TestSparseConfigOptions:
    def test_initial_best_is_used(self):
        graph = complete_bipartite(3, 3)
        from repro.mbb.result import Biclique

        seeded = hbv_mbb(
            graph, initial_best=Biclique.of(range(10), range(10))
        )
        assert seeded.side_size == 10  # fictional incumbent survives

    def test_sparse_mbb_alias(self):
        graph = random_bipartite(8, 8, 0.4, seed=1)
        assert sparse_mbb(graph).side_size == hbv_mbb(graph).side_size

    def test_node_budget_gives_best_effort(self):
        graph = random_bipartite(30, 30, 0.3, seed=2)
        config = SparseConfig(use_heuristic=False, node_budget=1)
        result = hbv_mbb(graph, config=config)
        assert result.biclique.is_valid_in(graph)

    def test_full_config_is_default(self):
        assert CONFIG_FULL == SparseConfig()


class TestOrderStageStat:
    """hbvMBB computes the total order once and reports its wall time."""

    def test_order_seconds_recorded_when_bridging_runs(self):
        graph = random_power_law_bipartite(40, 40, 3.0, seed=0)
        result = hbv_mbb(graph)
        assert result.terminated_at in (STEP_BRIDGE, STEP_VERIFY)
        assert result.stats.order_seconds > 0.0

    def test_order_seconds_zero_when_s1_proves_optimality(self):
        result = hbv_mbb(complete_bipartite(6, 6))
        assert result.terminated_at == STEP_HEURISTIC
        assert result.stats.order_seconds == 0.0

    def test_order_seconds_flows_into_solve_report(self):
        from repro.api import GraphSpec, MBBEngine, SolveReport, SolveRequest

        request = SolveRequest(
            graph=GraphSpec.power_law(40, 40, 3.0, seed=0), backend="sparse"
        )
        report = MBBEngine().solve(request)
        assert report.stats["order_seconds"] > 0.0
        clone = SolveReport.from_json(report.to_json())
        assert clone.stats["order_seconds"] == report.stats["order_seconds"]
