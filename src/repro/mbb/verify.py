"""Algorithm 8: ``verifyMBB`` — maximality verification.

The verification stage receives the vertex-centred subgraphs that survived
the bridging stage and proves (or improves) the incumbent by running the
dense-graph solver on each of them, with the centre vertex forced into the
result.  The subgraphs are first shrunk to their ``(best_side + 1)``-core
(Lemma 4 again, now with the possibly improved incumbent).

With the default :data:`~repro.mbb.dense.KERNEL_BITS` kernel each centred
subgraph arrives with the :class:`~repro.graph.bitset.IndexedBitGraph` the
bridging stage already built and cached on it, so no re-conversion happens
here; the core reduction is applied as a pair of vertex masks
(:func:`~repro.graph.bitset.k_core_masks`) and the exhaustive search runs
on bitmasks, so this stage never materialises additional
``BipartiteGraph`` copies.  The :data:`~repro.mbb.dense.KERNEL_SETS` path
preserves the original behaviour for ablations.

Because the surviving subgraphs are small (bounded by the bidegeneracy) and
dense, the exhaustive step behaves near-polynomially in practice, which is
the crux of the paper's ``O*(1.3803^δ̈)`` claim.
"""

from __future__ import annotations

from typing import Iterable

from repro.graph.bipartite import LEFT
from repro.graph.bitset import k_core_masks
from repro.cores.core import k_core
from repro.mbb.context import SearchAborted, SearchContext
from repro.mbb.dense import (
    BRANCH_TRIVIALITY_LAST,
    KERNEL_BITS,
    KERNEL_SETS,
    dense_mbb_on_bitgraph,
    dense_mbb_on_sets,
)
from repro.mbb.result import Biclique
from repro.mbb.vertex_centred import VertexCentredSubgraph


def _search_subgraph_bits(
    sub: VertexCentredSubgraph,
    context: SearchContext,
    branching: str,
    use_core_pruning: bool,
) -> None:
    """Bitset search of a single centred subgraph, centre forced in."""
    bitgraph = sub.to_bitgraph()
    left_mask = bitgraph.all_left_mask
    right_mask = bitgraph.all_right_mask
    if use_core_pruning:
        left_mask, right_mask = k_core_masks(
            bitgraph, context.best_side + 1, left_mask, right_mask
        )
    side, label = sub.center
    if side == LEFT:
        index = bitgraph.left_index[label]
        bit = 1 << index
        if not left_mask & bit:
            return
        a = bit
        b = 0
        ca = left_mask ^ bit
        cb = bitgraph.adj_left[index] & right_mask
    else:
        index = bitgraph.right_index[label]
        bit = 1 << index
        if not right_mask & bit:
            return
        a = 0
        b = bit
        ca = bitgraph.adj_right[index] & left_mask
        cb = right_mask ^ bit
    if min((a | ca).bit_count(), (b | cb).bit_count()) <= context.best_side:
        return
    context.stats.subgraphs_searched += 1
    dense_mbb_on_bitgraph(
        bitgraph, context, a, b, ca, cb, branching=branching, depth=0
    )


def _search_subgraph(
    sub: VertexCentredSubgraph,
    context: SearchContext,
    branching: str,
    use_core_pruning: bool,
) -> None:
    """Set-kernel search of a single centred subgraph, centre forced in."""
    subgraph = sub.graph
    if use_core_pruning:
        subgraph = k_core(subgraph, context.best_side + 1)
    side, label = sub.center
    if side == LEFT:
        if not subgraph.has_left_vertex(label):
            return
        neighbours = set(subgraph.neighbors_left(label))
        a = {label}
        b: set = set()
        ca = subgraph.left - {label}
        cb = neighbours
    else:
        if not subgraph.has_right_vertex(label):
            return
        neighbours = set(subgraph.neighbors_right(label))
        a = set()
        b = {label}
        ca = neighbours
        cb = subgraph.right - {label}
    if min(len(a) + len(ca), len(b) + len(cb)) <= context.best_side:
        return
    context.stats.subgraphs_searched += 1
    dense_mbb_on_sets(
        subgraph,
        context,
        a,
        b,
        ca,
        cb,
        branching=branching,
        depth=0,
        kernel=KERNEL_SETS,
    )


def verify_mbb(
    subgraphs: Iterable[VertexCentredSubgraph],
    context: SearchContext,
    *,
    branching: str = BRANCH_TRIVIALITY_LAST,
    use_core_pruning: bool = True,
    kernel: str = KERNEL_BITS,
) -> Biclique:
    """Run the verification stage over all surviving centred subgraphs.

    The incumbent stored in ``context`` is updated in place and also
    returned.  When a budget is exhausted the incumbent found so far is
    returned and ``context.aborted`` is set.  ``kernel`` selects the
    bitset (default) or adjacency-set search implementation.
    """
    search = _search_subgraph_bits if kernel == KERNEL_BITS else _search_subgraph
    for sub in subgraphs:
        if context.aborted:
            break
        try:
            # Budgets are polled between subgraphs as well as inside the
            # kernel, so a deadline fires even when every remaining
            # subgraph would be pruned before entering a search node.
            context.checkpoint()
            search(sub, context, branching, use_core_pruning)
        except SearchAborted:
            break
    return context.best
