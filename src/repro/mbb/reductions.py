"""Reduction rules applied inside the branch-and-bound solvers.

Three rules from the paper are implemented:

* **Lemma 1 (all-connection rule)** — a candidate adjacent to every
  candidate on the other side can be moved into the partial result
  immediately; it can never hurt.
* **Lemma 2 (low-degree rule)** — a candidate whose neighbourhood inside
  the other candidate set is too small to ever reach a result larger than
  the incumbent can be discarded.
* **Lemma 4 (core rule)** — globally, a vertex outside the
  ``(best_side + 1)``-core cannot participate in any improving balanced
  biclique, so the whole graph can be shrunk to that core.

All rules only discard vertices that cannot be part of a *strictly
improving* solution, so applying them never changes the optimum as long as
the incumbent itself is retained.

Each rule exists in two kernels: the original adjacency-set form
(:class:`NodeState` / :func:`reduce_node`) and a bitset form
(:class:`BitNodeState` / :func:`reduce_node_bits`) operating on
:class:`~repro.graph.bitset.IndexedBitGraph` masks, which is the default
inner loop of ``denseMBB``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Set, Tuple

from repro.graph.bipartite import BipartiteGraph, Vertex
from repro.graph.bitset import IndexedBitGraph
from repro.cores.core import k_core
from repro.mbb.context import SearchContext


@dataclass
class NodeState:
    """The four vertex sets making up one branch-and-bound node."""

    a: Set[Vertex]
    b: Set[Vertex]
    ca: Set[Vertex]
    cb: Set[Vertex]

    def copy(self) -> "NodeState":
        """Deep copy (the sets are copied, the labels are shared)."""
        return NodeState(set(self.a), set(self.b), set(self.ca), set(self.cb))

    @property
    def upper_bound_side(self) -> int:
        """``min(|A| + |CA|, |B| + |CB|)``."""
        return min(len(self.a) + len(self.ca), len(self.b) + len(self.cb))


def reduce_node(
    graph: BipartiteGraph,
    state: NodeState,
    context: SearchContext,
) -> NodeState:
    """Apply Lemmas 1 and 2 to a node until a fixpoint is reached.

    The state is modified in place and also returned for convenience.  The
    rules interact (forcing a vertex changes nothing for the other side's
    candidate degrees, but removing one does), hence the fixpoint loop.

    Invariant required and preserved: every vertex of ``CA`` is adjacent to
    all of ``B`` and every vertex of ``CB`` is adjacent to all of ``A``.
    """
    target = context.best_side + 1
    changed = True
    while changed:
        changed = False

        # Lemma 2: drop candidates that cannot reach an improving biclique.
        for u in list(state.ca):
            reachable_b = len(state.b) + len(graph.neighbors_left(u) & state.cb)
            if reachable_b < target:
                state.ca.discard(u)
                context.stats.reductions_removed += 1
                changed = True
        for v in list(state.cb):
            reachable_a = len(state.a) + len(graph.neighbors_right(v) & state.ca)
            if reachable_a < target:
                state.cb.discard(v)
                context.stats.reductions_removed += 1
                changed = True

        # Lemma 1: force candidates adjacent to the whole other candidate set.
        for u in list(state.ca):
            if state.cb <= graph.neighbors_left(u):
                state.ca.discard(u)
                state.a.add(u)
                context.stats.reductions_forced += 1
                changed = True
        for v in list(state.cb):
            if state.ca <= graph.neighbors_right(v):
                state.cb.discard(v)
                state.b.add(v)
                context.stats.reductions_forced += 1
                changed = True
    return state


@dataclass
class BitNodeState:
    """Bitset branch-and-bound node: four masks over an `IndexedBitGraph`.

    ``a``/``ca`` are masks over the left indices and ``b``/``cb`` masks over
    the right indices.  Because Python integers are immutable, child nodes
    are built with plain bit operations and no copying.
    """

    a: int
    b: int
    ca: int
    cb: int

    @property
    def upper_bound_side(self) -> int:
        """``min(|A| + |CA|, |B| + |CB|)``."""
        return min(
            (self.a | self.ca).bit_count(), (self.b | self.cb).bit_count()
        )


#: Branch candidate collected by :func:`reduce_node_bits`:
#: ``(missing_count, vertex_bit, neighbour_mask)``.
BranchCandidate = Tuple[int, int, int]


def reduce_node_bits(
    graph: IndexedBitGraph,
    state: BitNodeState,
    context: SearchContext,
) -> Tuple[Optional[BranchCandidate], Optional[BranchCandidate]]:
    """Bitset counterpart of :func:`reduce_node` (Lemmas 1 and 2).

    Identical semantics, but candidate neighbourhood intersections are one
    ``&`` and one ``bit_count`` each.  The state is modified in place.

    Each pass over one side checks both lemmas with a single neighbourhood
    intersection per candidate (the conditions only read the *other* side's
    masks, which a pass over this side never mutates), and a side is only
    rescanned when the opposite side changed since its last scan.

    As a byproduct of the final scans the function returns, per side, the
    surviving candidate with the most (>= 3) missing neighbours as
    ``(missing, bit, neighbour_mask)`` — exactly the triviality-last branch
    selection of Algorithm 3 — or ``None`` when every survivor of that side
    misses at most two neighbours (the Lemma 3 polynomial precondition).
    The values are valid because each side's final scan evaluates every
    surviving candidate against the other side's final masks.
    """
    target = context.best_side + 1
    adj_left = graph.adj_left
    adj_right = graph.adj_right
    stats = context.stats
    a = state.a
    b = state.b
    ca = state.ca
    cb = state.cb
    best_left: Optional[BranchCandidate] = None
    best_right: Optional[BranchCandidate] = None
    scan_left = True
    scan_right = True
    while scan_left or scan_right:
        if scan_left:
            scan_left = False
            best_left = None
            best_missing = 2
            b_size = b.bit_count()
            cb_size = cb.bit_count()
            remaining = ca
            while remaining:
                low = remaining & -remaining
                remaining ^= low
                neighbours = adj_left[low.bit_length() - 1] & cb
                kept = neighbours.bit_count()
                if b_size + kept < target:
                    ca ^= low
                    stats.reductions_removed += 1
                    scan_right = True
                elif neighbours == cb:
                    ca ^= low
                    a |= low
                    stats.reductions_forced += 1
                    scan_right = True
                elif cb_size - kept > best_missing:
                    best_missing = cb_size - kept
                    best_left = (best_missing, low, neighbours)
        if scan_right:
            scan_right = False
            best_right = None
            best_missing = 2
            a_size = a.bit_count()
            ca_size = ca.bit_count()
            remaining = cb
            while remaining:
                low = remaining & -remaining
                remaining ^= low
                neighbours = adj_right[low.bit_length() - 1] & ca
                kept = neighbours.bit_count()
                if a_size + kept < target:
                    cb ^= low
                    stats.reductions_removed += 1
                    scan_left = True
                elif neighbours == ca:
                    cb ^= low
                    b |= low
                    stats.reductions_forced += 1
                    scan_left = True
                elif ca_size - kept > best_missing:
                    best_missing = ca_size - kept
                    best_right = (best_missing, low, neighbours)
    state.a = a
    state.b = b
    state.ca = ca
    state.cb = cb
    return best_left, best_right


def core_reduce(graph: BipartiteGraph, best_side: int) -> BipartiteGraph:
    """Lemma 4: shrink the graph to its ``(best_side + 1)``-core.

    Any balanced biclique with side size at least ``best_side + 1`` gives
    each of its vertices degree at least ``best_side + 1`` inside the
    biclique, so all of them survive in that core; everything outside can
    be discarded without losing an improving solution.
    """
    return k_core(graph, best_side + 1)
