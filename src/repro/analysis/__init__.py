"""Measurement helpers behind the paper's breakdown figures (4, 5, 6)."""

from repro.analysis.metrics import (
    average_subgraph_density,
    heuristic_gaps,
    search_depth_ratio,
    subgraph_size_totals,
)

__all__ = [
    "average_subgraph_density",
    "heuristic_gaps",
    "search_depth_ratio",
    "subgraph_size_totals",
]
