"""Reading and writing bipartite graphs.

Two textual formats are supported:

* **Edge list** — one ``left right`` pair per line, whitespace separated.
  Lines starting with ``%`` or ``#`` are comments.  This is the format of
  the KONECT collection the paper evaluates on (its ``out.*`` files), so a
  user who does have the original datasets can load them directly.
* **Biadjacency matrix** — rows of ``0``/``1`` characters, one left vertex
  per row.  Convenient for the small, dense VLSI-style instances.

Both readers return plain :class:`~repro.graph.bipartite.BipartiteGraph`
objects with integer labels.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, TextIO, Union

from repro.exceptions import GraphFormatError
from repro.graph.bipartite import BipartiteGraph

PathLike = Union[str, Path]
_COMMENT_PREFIXES = ("%", "#")


def _open_lines(source: Union[PathLike, TextIO, Iterable[str]]) -> Iterable[str]:
    """Yield lines from a path, an open file object, or an iterable of strings."""
    if isinstance(source, (str, Path)):
        with open(source, "r", encoding="utf-8") as handle:
            yield from handle
        return
    yield from source


def read_edge_list(source: Union[PathLike, TextIO, Iterable[str]]) -> BipartiteGraph:
    """Parse a KONECT-style edge list into a bipartite graph.

    Each non-comment line must start with two integer tokens, the left and
    right endpoint; any further tokens (weights, timestamps) are ignored,
    matching how the paper treats KONECT data as unweighted.
    """
    graph = BipartiteGraph()
    for line_number, raw_line in enumerate(_open_lines(source), start=1):
        line = raw_line.strip()
        if not line or line.startswith(_COMMENT_PREFIXES):
            continue
        tokens = line.split()
        if len(tokens) < 2:
            raise GraphFormatError(
                f"line {line_number}: expected at least two tokens, got {line!r}"
            )
        try:
            u = int(tokens[0])
            v = int(tokens[1])
        except ValueError as exc:
            raise GraphFormatError(
                f"line {line_number}: endpoints must be integers, got {line!r}"
            ) from exc
        graph.add_edge(u, v)
    return graph


def write_edge_list(graph: BipartiteGraph, path: PathLike) -> None:
    """Write ``graph`` as an edge list with a small header comment."""
    path = Path(path)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(
            f"% bipartite edge list |L|={graph.num_left} "
            f"|R|={graph.num_right} |E|={graph.num_edges}\n"
        )
        for u, v in graph.to_edge_list():
            handle.write(f"{u} {v}\n")


def read_biadjacency(source: Union[PathLike, TextIO, Iterable[str]]) -> BipartiteGraph:
    """Parse a 0/1 biadjacency matrix (one row of digits per line)."""
    rows = []
    width = None
    for line_number, raw_line in enumerate(_open_lines(source), start=1):
        line = raw_line.strip()
        if not line or line.startswith(_COMMENT_PREFIXES):
            continue
        cells = line.replace(" ", "")
        if any(c not in "01" for c in cells):
            raise GraphFormatError(
                f"line {line_number}: biadjacency rows may only contain 0/1, got {line!r}"
            )
        if width is None:
            width = len(cells)
        elif len(cells) != width:
            raise GraphFormatError(
                f"line {line_number}: ragged matrix (expected {width} columns, "
                f"got {len(cells)})"
            )
        rows.append([int(c) for c in cells])
    return BipartiteGraph.from_biadjacency(rows)


def write_biadjacency(graph: BipartiteGraph, path: PathLike) -> None:
    """Write ``graph`` as a 0/1 biadjacency matrix with vertex order comments."""
    matrix, left_order, right_order = graph.to_biadjacency()
    path = Path(path)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(f"% rows: {left_order}\n")
        handle.write(f"% cols: {right_order}\n")
        for row in matrix:
            handle.write("".join(str(cell) for cell in row) + "\n")


def from_networkx(nx_graph, left_nodes: Iterable) -> BipartiteGraph:
    """Convert a NetworkX bipartite graph into a :class:`BipartiteGraph`.

    ``left_nodes`` designates which NetworkX nodes form the left side;
    every edge must have exactly one endpoint in that set.  The import is
    optional — the library itself never depends on NetworkX — but the
    converter makes it easy to reuse existing loaders in examples/tests.
    """
    left_set = set(left_nodes)
    graph = BipartiteGraph(left=left_set)
    for node in nx_graph.nodes:
        if node not in left_set:
            graph.add_right_vertex(node, exist_ok=True)
    for a, b in nx_graph.edges:
        if a in left_set and b not in left_set:
            graph.add_edge(a, b)
        elif b in left_set and a not in left_set:
            graph.add_edge(b, a)
        else:
            raise GraphFormatError(
                f"edge ({a!r}, {b!r}) does not cross the given bipartition"
            )
    return graph
