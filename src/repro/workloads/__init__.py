"""Workload generators and dataset stand-ins used by the evaluation.

* :mod:`~repro.workloads.synthetic` — parameter sweeps for the dense
  synthetic suite (Table 4) and helpers for sparse synthetic graphs.
* :mod:`~repro.workloads.datasets` — a registry of scaled-down synthetic
  stand-ins for the 30 KONECT datasets of Table 5/6 (the originals are not
  redistributable nor downloadable in this environment; see DESIGN.md for
  the substitution rationale).
"""

from repro.workloads.datasets import (
    DATASETS,
    TOUGH_DATASETS,
    DatasetSpec,
    load_dataset,
    tough_dataset_names,
)
from repro.workloads.synthetic import (
    DenseCase,
    dense_case_graph,
    dense_suite,
    sparse_synthetic_graph,
)

__all__ = [
    "DATASETS",
    "TOUGH_DATASETS",
    "DatasetSpec",
    "load_dataset",
    "tough_dataset_names",
    "DenseCase",
    "dense_case_graph",
    "dense_suite",
    "sparse_synthetic_graph",
]
