"""Tests for the random and structured graph generators."""

from __future__ import annotations

import random

import pytest

from repro.exceptions import InvalidParameterError
from repro.graph.generators import (
    complete_bipartite,
    crown_graph,
    cycle_bipartite,
    expected_dense_mbb_side,
    grid_union_of_bicliques,
    path_bipartite,
    planted_balanced_biclique,
    random_bipartite,
    random_bipartite_with_edge_count,
    random_near_complete_bipartite,
    random_power_law_bipartite,
    star_bipartite,
)
from repro.graph.complement import max_missing_degree
from repro.graph.validation import check_consistent, is_biclique


class TestRandomBipartite:
    def test_sizes_and_density_extremes(self):
        empty = random_bipartite(5, 6, 0.0, seed=1)
        full = random_bipartite(5, 6, 1.0, seed=1)
        assert empty.num_edges == 0
        assert full.num_edges == 30
        assert empty.num_left == full.num_left == 5

    def test_deterministic_for_fixed_seed(self):
        a = random_bipartite(8, 8, 0.5, seed=42)
        b = random_bipartite(8, 8, 0.5, seed=42)
        assert a == b

    def test_different_seeds_differ(self):
        a = random_bipartite(10, 10, 0.5, seed=1)
        b = random_bipartite(10, 10, 0.5, seed=2)
        assert a != b

    def test_density_roughly_respected(self):
        graph = random_bipartite(40, 40, 0.3, seed=5)
        assert 0.2 < graph.density < 0.4

    def test_invalid_parameters(self):
        with pytest.raises(InvalidParameterError):
            random_bipartite(-1, 5, 0.5)
        with pytest.raises(InvalidParameterError):
            random_bipartite(5, 5, 1.5)

    def test_accepts_random_instance(self):
        rng = random.Random(7)
        graph = random_bipartite(4, 4, 0.5, seed=rng)
        check_consistent(graph)


class TestEdgeCountGenerator:
    @pytest.mark.parametrize("n_edges", [0, 5, 12, 20])
    def test_exact_edge_count(self, n_edges):
        graph = random_bipartite_with_edge_count(4, 5, n_edges, seed=3)
        assert graph.num_edges == n_edges
        check_consistent(graph)

    def test_invalid_edge_count(self):
        with pytest.raises(InvalidParameterError):
            random_bipartite_with_edge_count(2, 2, 5)


class TestPowerLawGenerator:
    def test_basic_shape(self):
        graph = random_power_law_bipartite(200, 100, 3.0, seed=1)
        assert graph.num_left == 200
        assert graph.num_right == 100
        assert 0 < graph.num_edges <= 200 * 3
        check_consistent(graph)

    def test_degree_skew_hubs_exist(self):
        graph = random_power_law_bipartite(300, 300, 4.0, seed=2)
        degrees = sorted(
            (graph.degree_left(u) for u in graph.left_vertices()), reverse=True
        )
        # The biggest hub should be far above the average degree.
        average = sum(degrees) / len(degrees)
        assert degrees[0] >= 3 * average

    def test_zero_average_degree(self):
        graph = random_power_law_bipartite(10, 10, 0.0, seed=1)
        assert graph.num_edges == 0

    def test_invalid_parameters(self):
        with pytest.raises(InvalidParameterError):
            random_power_law_bipartite(10, 10, -1.0)
        with pytest.raises(InvalidParameterError):
            random_power_law_bipartite(10, 10, 2.0, exponent=0.5)


class TestPlantedBiclique:
    def test_planted_block_is_a_biclique(self):
        graph = planted_balanced_biclique(30, 30, 6, background_density=0.05, seed=1)
        planted_left = list(range(6))
        planted_right = list(range(6))
        assert is_biclique(graph, planted_left, planted_right)

    def test_planted_size_zero_is_plain_random(self):
        graph = planted_balanced_biclique(10, 10, 0, background_density=0.0, seed=1)
        assert graph.num_edges == 0

    def test_invalid_planted_size(self):
        with pytest.raises(InvalidParameterError):
            planted_balanced_biclique(5, 5, 6)


class TestNearComplete:
    @pytest.mark.parametrize("max_missing", [0, 1, 2])
    def test_missing_budget_respected(self, max_missing):
        graph = random_near_complete_bipartite(8, 8, max_missing=max_missing, seed=4)
        assert max_missing_degree(graph) <= max_missing

    def test_invalid_budget(self):
        with pytest.raises(InvalidParameterError):
            random_near_complete_bipartite(4, 4, max_missing=-1)


class TestStructuredGraphs:
    def test_complete_bipartite(self):
        graph = complete_bipartite(3, 7)
        assert graph.num_edges == 21
        assert graph.density == pytest.approx(1.0)

    def test_crown_graph_structure(self):
        graph = crown_graph(4)
        assert graph.num_edges == 4 * 3
        assert all(not graph.has_edge(i, i) for i in range(4))

    def test_crown_graph_invalid(self):
        with pytest.raises(InvalidParameterError):
            crown_graph(-1)

    def test_path_bipartite_edge_count(self):
        for length in range(0, 8):
            graph = path_bipartite(length)
            assert graph.num_edges == length
            assert graph.num_vertices == length + 1
            check_consistent(graph)

    def test_path_bipartite_degrees(self):
        graph = path_bipartite(5)
        degrees = sorted(
            [graph.degree_left(u) for u in graph.left_vertices()]
            + [graph.degree_right(v) for v in graph.right_vertices()]
        )
        # A path has exactly two endpoints of degree 1.
        assert degrees.count(1) == 2
        assert max(degrees) <= 2

    def test_cycle_bipartite(self):
        graph = cycle_bipartite(8)
        assert graph.num_vertices == 8
        assert graph.num_edges == 8
        assert all(graph.degree_left(u) == 2 for u in graph.left_vertices())
        assert all(graph.degree_right(v) == 2 for v in graph.right_vertices())

    def test_cycle_bipartite_invalid(self):
        with pytest.raises(InvalidParameterError):
            cycle_bipartite(7)
        with pytest.raises(InvalidParameterError):
            cycle_bipartite(2)

    def test_star_bipartite(self):
        graph = star_bipartite(5)
        assert graph.num_left == 1
        assert graph.num_right == 5
        assert graph.degree_left(0) == 5

    def test_grid_union_of_bicliques(self):
        graph = grid_union_of_bicliques([3, 2])
        assert graph.num_edges == 9 + 4
        assert is_biclique(graph, [0, 1, 2], [0, 1, 2])
        assert is_biclique(graph, [3, 4], [3, 4])

    def test_grid_union_with_noise_stays_consistent(self):
        graph = grid_union_of_bicliques([2, 2], noise_edges=5, seed=1)
        check_consistent(graph)


class TestExpectedDenseSide:
    def test_monotone_in_density(self):
        low = expected_dense_mbb_side(64, 0.5)
        high = expected_dense_mbb_side(64, 0.9)
        assert high >= low

    def test_extremes(self):
        assert expected_dense_mbb_side(10, 0.0) == 0
        assert expected_dense_mbb_side(10, 1.0) == 10
        assert expected_dense_mbb_side(0, 0.5) == 0
