"""Unified public solver API.

Most users should simply call :func:`solve_mbb` (or the even smaller
:func:`maximum_balanced_biclique`), which inspects the input graph and
dispatches to the dense-graph algorithm or to the sparse framework, the two
exact algorithms contributed by the paper.
"""

from __future__ import annotations

import sys
from typing import Optional

from repro.exceptions import InvalidParameterError
from repro.graph.bipartite import BipartiteGraph
from repro.mbb.basic_bb import basic_bb
from repro.mbb.dense import dense_mbb
from repro.mbb.result import Biclique, MBBResult
from repro.mbb.sparse import SparseConfig, hbv_mbb

METHOD_AUTO = "auto"
METHOD_DENSE = "dense"
METHOD_SPARSE = "sparse"
METHOD_BASIC = "basic"

_METHODS = (METHOD_AUTO, METHOD_DENSE, METHOD_SPARSE, METHOD_BASIC)

#: Density threshold above which the dense solver is chosen automatically.
#: The paper targets ``denseMBB`` at graphs with density >= 0.7 but it is
#: already the better choice well below that; 0.4 keeps mid-density random
#: instances on the dense path while routing genuinely sparse data to the
#: bidegeneracy framework.
DENSE_DENSITY_THRESHOLD = 0.4
#: Graphs at most this many vertices are handed to the dense solver
#: regardless of density — constructing orders and centred subgraphs is not
#: worth it for tiny inputs.
SMALL_GRAPH_VERTICES = 64


def _ensure_recursion_headroom(graph: BipartiteGraph) -> None:
    """Raise the interpreter recursion limit for deep branch-and-bound runs."""
    needed = 4 * graph.num_vertices + 1000
    if sys.getrecursionlimit() < needed:
        sys.setrecursionlimit(needed)


def choose_method(graph: BipartiteGraph) -> str:
    """Pick ``dense`` or ``sparse`` for a graph the way ``auto`` does."""
    if graph.num_vertices <= SMALL_GRAPH_VERTICES:
        return METHOD_DENSE
    if graph.density >= DENSE_DENSITY_THRESHOLD:
        return METHOD_DENSE
    return METHOD_SPARSE


def solve_mbb(
    graph: BipartiteGraph,
    *,
    method: str = METHOD_AUTO,
    sparse_config: Optional[SparseConfig] = None,
    node_budget: Optional[int] = None,
    time_budget: Optional[float] = None,
) -> MBBResult:
    """Find a maximum balanced biclique of ``graph``.

    Parameters
    ----------
    graph:
        The bipartite graph to search.
    method:
        ``"auto"`` (default) picks between the two exact algorithms based
        on density and size; ``"dense"``, ``"sparse"`` and ``"basic"``
        force a specific solver (``basic`` is the unoptimised Algorithm 1,
        exposed mainly for education and testing).
    sparse_config:
        Optional :class:`SparseConfig` forwarded to the sparse framework.
    node_budget, time_budget:
        Optional budgets; exhausted budgets return the best-so-far result
        with ``optimal=False``.

    Returns
    -------
    MBBResult
        The balanced biclique together with statistics and optimality flag.
    """
    if method not in _METHODS:
        raise InvalidParameterError(
            f"unknown method {method!r}; expected one of {_METHODS}"
        )
    _ensure_recursion_headroom(graph)
    if method == METHOD_AUTO:
        method = choose_method(graph)

    if method == METHOD_BASIC:
        return basic_bb(graph, node_budget=node_budget, time_budget=time_budget)
    if method == METHOD_DENSE:
        return dense_mbb(graph, node_budget=node_budget, time_budget=time_budget)

    config = sparse_config if sparse_config is not None else SparseConfig()
    if node_budget is not None or time_budget is not None:
        config = SparseConfig(
            use_heuristic=config.use_heuristic,
            use_core_pruning=config.use_core_pruning,
            use_dense_branching=config.use_dense_branching,
            order=config.order,
            heuristic_seeds=config.heuristic_seeds,
            node_budget=node_budget,
            time_budget=time_budget,
        )
    return hbv_mbb(graph, config=config)


def maximum_balanced_biclique(graph: BipartiteGraph, **kwargs) -> Biclique:
    """Return just the maximum balanced biclique (see :func:`solve_mbb`)."""
    return solve_mbb(graph, **kwargs).biclique
