"""Tests for graph I/O (edge lists, biadjacency matrices, NetworkX bridge)."""

from __future__ import annotations

import io

import networkx as nx
import pytest

from repro.exceptions import GraphFormatError
from repro.graph.generators import random_bipartite
from repro.graph.io import (
    from_networkx,
    read_biadjacency,
    read_edge_list,
    write_biadjacency,
    write_edge_list,
)


class TestEdgeList:
    def test_read_from_iterable_of_lines(self):
        graph = read_edge_list(["% comment", "1 10", "2 10", "", "# another", "2 11"])
        assert graph.num_left == 2
        assert graph.num_right == 2
        assert graph.num_edges == 3

    def test_extra_tokens_are_ignored(self):
        graph = read_edge_list(["1 2 3.5 1318032000"])
        assert graph.has_edge(1, 2)

    def test_bad_token_raises(self):
        with pytest.raises(GraphFormatError):
            read_edge_list(["a b"])

    def test_too_few_tokens_raises(self):
        with pytest.raises(GraphFormatError):
            read_edge_list(["42"])

    def test_round_trip_through_file(self, tmp_path):
        graph = random_bipartite(6, 7, 0.4, seed=9)
        path = tmp_path / "graph.txt"
        write_edge_list(graph, path)
        loaded = read_edge_list(path)
        assert loaded.num_edges == graph.num_edges
        assert {(u, v) for u, v in loaded.edges()} == {(u, v) for u, v in graph.edges()}

    def test_read_from_open_file_object(self):
        handle = io.StringIO("5 6\n5 7\n")
        graph = read_edge_list(handle)
        assert graph.degree_left(5) == 2


class TestBiadjacency:
    def test_read_simple_matrix(self):
        graph = read_biadjacency(["101", "010"])
        assert graph.num_left == 2
        assert graph.num_right == 3
        assert graph.has_edge(0, 0) and graph.has_edge(0, 2) and graph.has_edge(1, 1)

    def test_read_with_spaces_and_comments(self):
        graph = read_biadjacency(["% header", "1 0", "0 1"])
        assert graph.num_edges == 2

    def test_ragged_matrix_raises(self):
        with pytest.raises(GraphFormatError):
            read_biadjacency(["10", "101"])

    def test_non_binary_entry_raises(self):
        with pytest.raises(GraphFormatError):
            read_biadjacency(["102"])

    def test_round_trip_through_file(self, tmp_path):
        graph = random_bipartite(4, 5, 0.5, seed=3)
        path = tmp_path / "matrix.txt"
        write_biadjacency(graph, path)
        loaded = read_biadjacency(path)
        assert loaded.num_edges == graph.num_edges


class TestNetworkxBridge:
    def test_round_trip_from_networkx(self):
        nx_graph = nx.Graph()
        nx_graph.add_nodes_from(["u1", "u2"], bipartite=0)
        nx_graph.add_nodes_from(["v1", "v2", "v3"], bipartite=1)
        nx_graph.add_edges_from([("u1", "v1"), ("u2", "v1"), ("u2", "v3")])
        graph = from_networkx(nx_graph, left_nodes=["u1", "u2"])
        assert graph.num_left == 2
        assert graph.num_right == 3
        assert graph.has_edge("u2", "v3")

    def test_edge_inside_partition_raises(self):
        nx_graph = nx.Graph()
        nx_graph.add_edge("u1", "u2")
        with pytest.raises(GraphFormatError):
            from_networkx(nx_graph, left_nodes=["u1", "u2"])
