"""Baseline algorithms the paper compares against (and test oracles).

* :mod:`~repro.baselines.brute_force` — independent exhaustive oracle used
  by the test suite.
* :mod:`~repro.baselines.extbbclq` — the state-of-the-art exact baseline
  ExtBBClq (Zhou, Rossi and Hao, 2018).
* :mod:`~repro.baselines.mbe` — adapted maximal-biclique-enumeration
  engines (iMBEA- and FMBE-style) used inside the ``adp*`` baselines.
* :mod:`~repro.baselines.local_search` — POLS- and SBMNAS-style heuristics.
* :mod:`~repro.baselines.adapted` — the non-trivial baselines ``adp1`` to
  ``adp4`` assembled from the pieces above.
* :mod:`~repro.baselines.mvb` — the polynomial maximum *vertex* biclique
  solver (König / Hopcroft-Karp), a useful upper bound and sanity check.
"""

from repro.baselines.brute_force import brute_force_mbb, brute_force_side_size
from repro.baselines.extbbclq import ext_bbclq
from repro.baselines.mbe import adapted_fmbe, adapted_imbea
from repro.baselines.local_search import pols, sbmnas
from repro.baselines.adapted import ADAPTED_BASELINES, run_adapted_baseline
from repro.baselines.mvb import hopcroft_karp_matching, maximum_vertex_biclique

__all__ = [
    "brute_force_mbb",
    "brute_force_side_size",
    "ext_bbclq",
    "adapted_imbea",
    "adapted_fmbe",
    "pols",
    "sbmnas",
    "ADAPTED_BASELINES",
    "run_adapted_baseline",
    "maximum_vertex_biclique",
    "hopcroft_karp_matching",
]
