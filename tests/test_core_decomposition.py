"""Tests for the classical core decomposition, cross-checked against NetworkX."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.graph.bipartite import LEFT, RIGHT, BipartiteGraph
from repro.graph.generators import (
    complete_bipartite,
    path_bipartite,
    random_bipartite,
    star_bipartite,
)
from repro.cores.core import core_numbers, degeneracy, degeneracy_order, k_core


def _to_networkx(graph: BipartiteGraph) -> nx.Graph:
    nx_graph = nx.Graph()
    for u in graph.left_vertices():
        nx_graph.add_node((LEFT, u))
    for v in graph.right_vertices():
        nx_graph.add_node((RIGHT, v))
    for u, v in graph.edges():
        nx_graph.add_edge((LEFT, u), (RIGHT, v))
    return nx_graph


class TestCoreNumbers:
    @pytest.mark.parametrize("seed", range(8))
    def test_matches_networkx_on_random_graphs(self, seed):
        graph = random_bipartite(8, 9, 0.35, seed=seed)
        expected = nx.core_number(_to_networkx(graph))
        assert core_numbers(graph) == expected

    def test_complete_bipartite(self):
        graph = complete_bipartite(3, 5)
        numbers = core_numbers(graph)
        assert all(value == 3 for value in numbers.values())

    def test_star_graph(self):
        graph = star_bipartite(6)
        numbers = core_numbers(graph)
        assert numbers[(LEFT, 0)] == 1
        assert all(numbers[(RIGHT, v)] == 1 for v in range(6))

    def test_path_graph_core_is_one(self):
        numbers = core_numbers(path_bipartite(6))
        assert set(numbers.values()) == {1}

    def test_empty_graph(self):
        assert core_numbers(BipartiteGraph()) == {}

    def test_isolated_vertices_have_core_zero(self):
        graph = BipartiteGraph(left=[1], right=[2])
        numbers = core_numbers(graph)
        assert numbers == {(LEFT, 1): 0, (RIGHT, 2): 0}


class TestDegeneracy:
    def test_complete_bipartite_degeneracy(self):
        assert degeneracy(complete_bipartite(4, 7)) == 4

    def test_empty_graph_degeneracy_is_zero(self):
        assert degeneracy(BipartiteGraph()) == 0

    @pytest.mark.parametrize("seed", range(5))
    def test_degeneracy_equals_max_core_number(self, seed):
        graph = random_bipartite(10, 10, 0.3, seed=seed)
        assert degeneracy(graph) == max(core_numbers(graph).values())


class TestDegeneracyOrder:
    @pytest.mark.parametrize("seed", range(6))
    def test_is_a_permutation_of_all_vertices(self, seed):
        graph = random_bipartite(7, 8, 0.4, seed=seed)
        order = degeneracy_order(graph)
        assert len(order) == graph.num_vertices
        assert len(set(order)) == graph.num_vertices

    @pytest.mark.parametrize("seed", range(6))
    def test_smallest_degree_last_property(self, seed):
        graph = random_bipartite(7, 7, 0.4, seed=seed)
        order = degeneracy_order(graph)
        delta = degeneracy(graph)
        remaining_left = set(graph.left)
        remaining_right = set(graph.right)
        for side, label in order:
            if side == LEFT:
                degree = len(graph.neighbors_left(label) & remaining_right)
            else:
                degree = len(graph.neighbors_right(label) & remaining_left)
            # The defining property of a degeneracy order: each vertex has
            # residual degree at most the degeneracy when it is peeled.
            assert degree <= delta
            if side == LEFT:
                remaining_left.discard(label)
            else:
                remaining_right.discard(label)


class TestKCore:
    def test_k_core_of_complete_graph(self):
        graph = complete_bipartite(4, 4)
        assert k_core(graph, 4).num_vertices == 8
        assert k_core(graph, 5).num_vertices == 0

    def test_k_core_zero_returns_copy(self):
        graph = random_bipartite(5, 5, 0.3, seed=1)
        core = k_core(graph, 0)
        assert core == graph
        assert core is not graph

    def test_k_core_minimum_degree_property(self):
        graph = random_bipartite(12, 12, 0.3, seed=3)
        for k in range(1, 4):
            core = k_core(graph, k)
            for u in core.left_vertices():
                assert core.degree_left(u) >= k
            for v in core.right_vertices():
                assert core.degree_right(v) >= k

    def test_k_core_matches_networkx(self):
        graph = random_bipartite(10, 10, 0.35, seed=9)
        for k in range(1, 4):
            ours = k_core(graph, k)
            theirs = nx.k_core(_to_networkx(graph), k)
            expected_left = {n[1] for n in theirs.nodes if n[0] == LEFT}
            expected_right = {n[1] for n in theirs.nodes if n[0] == RIGHT}
            assert ours.left == expected_left
            assert ours.right == expected_right
