"""End-to-end integration tests across the whole library.

These tests exercise realistic flows: generate a workload, run every exact
solver plus the baselines, and check that they all agree and produce valid
results; load dataset stand-ins and run the sparse framework on them; pipe
graphs through I/O before solving.
"""

from __future__ import annotations

import pytest

from repro import (
    bidegeneracy,
    degeneracy,
    maximum_balanced_biclique,
    solve_mbb,
)
from repro.graph.generators import planted_balanced_biclique, random_bipartite
from repro.graph.io import read_edge_list, write_edge_list
from repro.baselines.adapted import run_adapted_baseline
from repro.baselines.brute_force import brute_force_side_size
from repro.baselines.extbbclq import ext_bbclq
from repro.baselines.mbe import adapted_fmbe, adapted_imbea
from repro.baselines.mvb import mvb_total_size
from repro.mbb.basic_bb import basic_bb
from repro.mbb.dense import dense_mbb
from repro.mbb.sparse import hbv_mbb, variant
from repro.workloads.datasets import DATASETS, load_dataset


class TestAllSolversAgree:
    """Every exact algorithm in the library reports the same optimum."""

    @pytest.mark.parametrize("seed", range(10))
    def test_agreement_on_random_graphs(self, seed, random_graph_factory):
        graph = random_graph_factory(seed, max_side=8)
        oracle = brute_force_side_size(graph)
        solvers = {
            "basicBB": basic_bb(graph).side_size,
            "denseMBB": dense_mbb(graph).side_size,
            "hbvMBB": hbv_mbb(graph).side_size,
            "extBBCl": ext_bbclq(graph).side_size,
            "iMBEA": adapted_imbea(graph).side_size,
            "FMBE": adapted_fmbe(graph).side_size,
            "adp1": run_adapted_baseline(graph, "adp1", heuristic_iterations=100).side_size,
            "solve_mbb": solve_mbb(graph).side_size,
        }
        assert all(value == oracle for value in solvers.values()), (seed, oracle, solvers)

    @pytest.mark.parametrize("seed", range(4))
    def test_agreement_on_dense_graphs(self, seed):
        graph = random_bipartite(10, 10, 0.85, seed=seed)
        oracle = brute_force_side_size(graph)
        assert dense_mbb(graph).side_size == oracle
        assert hbv_mbb(graph).side_size == oracle
        assert ext_bbclq(graph).side_size == oracle


class TestTheoreticalRelationships:
    @pytest.mark.parametrize("seed", range(6))
    def test_chain_of_bounds(self, seed):
        """MBB side <= degeneracy <= bidegeneracy and 2*MBB <= MVB total."""
        graph = random_bipartite(10, 10, 0.4, seed=seed)
        side = solve_mbb(graph).side_size
        assert side <= degeneracy(graph) <= bidegeneracy(graph)
        assert 2 * side <= mvb_total_size(graph)


class TestWorkloadFlows:
    @pytest.mark.parametrize("name", ["unicodelang", "moreno-crime", "dbpedia-genre"])
    def test_dataset_stand_in_end_to_end(self, name):
        graph = load_dataset(name)
        result = hbv_mbb(graph)
        assert result.optimal
        assert result.biclique.is_valid_in(graph)
        # The planted community guarantees a lower bound on the optimum.
        assert result.side_size >= DATASETS[name].planted_size

    def test_planted_instance_through_public_api(self):
        graph = planted_balanced_biclique(80, 80, 8, background_density=0.02, seed=9)
        biclique = maximum_balanced_biclique(graph)
        assert biclique.side_size >= 8
        assert biclique.is_valid_in(graph)

    def test_io_round_trip_then_solve(self, tmp_path):
        graph = planted_balanced_biclique(20, 20, 4, background_density=0.05, seed=3)
        path = tmp_path / "graph.edges"
        write_edge_list(graph, path)
        reloaded = read_edge_list(path)
        assert solve_mbb(reloaded).side_size == solve_mbb(graph).side_size

    def test_variant_configs_agree_on_a_dataset(self):
        graph = load_dataset("moreno-crime")
        full = hbv_mbb(graph).side_size
        for name in ("bd1", "bd4", "bd5"):
            assert hbv_mbb(graph, config=variant(name)).side_size == full
