"""Table 5 — sparse datasets: hbvMBB vs adp1-adp4 vs ExtBBClq.

One row per dataset stand-in, reporting the optimum side size, the running
time of every algorithm (``-`` when the time budget is exhausted before
proving optimality, mirroring the paper's 4-hour timeout dashes) and the
step at which ``hbvMBB`` terminated (S1/S2/S3).

Expected shape: ``hbvMBB`` is the fastest on every dataset and terminates
at S1 or S2 for a substantial fraction of them; ``adp3`` is the usual
runner-up; ``extBBCl`` hits the budget on the tougher datasets.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.bench.harness import format_table, run_backend
from repro.workloads.datasets import DATASETS, DatasetSpec

#: Algorithm columns in the paper's order.
ALGORITHMS = ("adp1", "adp2", "adp3", "adp4", "extBBCl", "hbvMBB")

#: Column label -> registry backend name.
BACKENDS = {
    "adp1": "adp1",
    "adp2": "adp2",
    "adp3": "adp3",
    "adp4": "adp4",
    "extBBCl": "extbbclq",
    "hbvMBB": "sparse",
}


def run_dataset(
    spec: DatasetSpec,
    *,
    time_budget: Optional[float] = 10.0,
    algorithms: Sequence[str] = ALGORITHMS,
) -> Dict[str, object]:
    """Run every requested algorithm on one dataset stand-in."""
    graph = spec.generate()
    row: Dict[str, object] = {
        "dataset": spec.name,
        "|L|": graph.num_left,
        "|R|": graph.num_right,
        "|E|": graph.num_edges,
    }
    optimum = None
    for name in algorithms:
        if name not in BACKENDS:
            raise ValueError(f"unknown algorithm {name!r}")
        result, elapsed = run_backend(
            graph, BACKENDS[name], time_budget=time_budget
        )
        if name == "hbvMBB":
            row["step"] = result.terminated_at
        row[name] = elapsed if result.optimal else "-"
        if result.optimal:
            optimum = (
                result.side_size
                if optimum is None
                else max(optimum, result.side_size)
            )
    row["optimum"] = optimum if optimum is not None else "?"
    return row


def run_table5(
    dataset_names: Optional[Sequence[str]] = None,
    *,
    time_budget: Optional[float] = 10.0,
    algorithms: Sequence[str] = ALGORITHMS,
) -> List[Dict[str, object]]:
    """Produce the Table 5 rows for the requested datasets (default: all 30)."""
    if dataset_names is None:
        dataset_names = list(DATASETS)
    rows: List[Dict[str, object]] = []
    for name in dataset_names:
        rows.append(
            run_dataset(
                DATASETS[name], time_budget=time_budget, algorithms=algorithms
            )
        )
    return rows


def format_table5(rows: Sequence[Dict[str, object]]) -> str:
    """Render the Table 5 rows in the paper's column order."""
    columns = ["dataset", "|L|", "|R|", "|E|", "optimum"] + list(ALGORITHMS) + ["step"]
    present = [c for c in columns if any(c in row for row in rows)]
    return format_table(rows, present)
