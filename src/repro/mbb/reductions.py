"""Reduction rules applied inside the branch-and-bound solvers.

Three rules from the paper are implemented:

* **Lemma 1 (all-connection rule)** — a candidate adjacent to every
  candidate on the other side can be moved into the partial result
  immediately; it can never hurt.
* **Lemma 2 (low-degree rule)** — a candidate whose neighbourhood inside
  the other candidate set is too small to ever reach a result larger than
  the incumbent can be discarded.
* **Lemma 4 (core rule)** — globally, a vertex outside the
  ``(best_side + 1)``-core cannot participate in any improving balanced
  biclique, so the whole graph can be shrunk to that core.

All rules only discard vertices that cannot be part of a *strictly
improving* solution, so applying them never changes the optimum as long as
the incumbent itself is retained.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Set

from repro.graph.bipartite import BipartiteGraph, Vertex
from repro.cores.core import k_core
from repro.mbb.context import SearchContext


@dataclass
class NodeState:
    """The four vertex sets making up one branch-and-bound node."""

    a: Set[Vertex]
    b: Set[Vertex]
    ca: Set[Vertex]
    cb: Set[Vertex]

    def copy(self) -> "NodeState":
        """Deep copy (the sets are copied, the labels are shared)."""
        return NodeState(set(self.a), set(self.b), set(self.ca), set(self.cb))

    @property
    def upper_bound_side(self) -> int:
        """``min(|A| + |CA|, |B| + |CB|)``."""
        return min(len(self.a) + len(self.ca), len(self.b) + len(self.cb))


def reduce_node(
    graph: BipartiteGraph,
    state: NodeState,
    context: SearchContext,
) -> NodeState:
    """Apply Lemmas 1 and 2 to a node until a fixpoint is reached.

    The state is modified in place and also returned for convenience.  The
    rules interact (forcing a vertex changes nothing for the other side's
    candidate degrees, but removing one does), hence the fixpoint loop.

    Invariant required and preserved: every vertex of ``CA`` is adjacent to
    all of ``B`` and every vertex of ``CB`` is adjacent to all of ``A``.
    """
    target = context.best_side + 1
    changed = True
    while changed:
        changed = False

        # Lemma 2: drop candidates that cannot reach an improving biclique.
        for u in list(state.ca):
            reachable_b = len(state.b) + len(graph.neighbors_left(u) & state.cb)
            if reachable_b < target:
                state.ca.discard(u)
                context.stats.reductions_removed += 1
                changed = True
        for v in list(state.cb):
            reachable_a = len(state.a) + len(graph.neighbors_right(v) & state.ca)
            if reachable_a < target:
                state.cb.discard(v)
                context.stats.reductions_removed += 1
                changed = True

        # Lemma 1: force candidates adjacent to the whole other candidate set.
        for u in list(state.ca):
            if state.cb <= graph.neighbors_left(u):
                state.ca.discard(u)
                state.a.add(u)
                context.stats.reductions_forced += 1
                changed = True
        for v in list(state.cb):
            if state.ca <= graph.neighbors_right(v):
                state.cb.discard(v)
                state.b.add(v)
                context.stats.reductions_forced += 1
                changed = True
    return state


def core_reduce(graph: BipartiteGraph, best_side: int) -> BipartiteGraph:
    """Lemma 4: shrink the graph to its ``(best_side + 1)``-core.

    Any balanced biclique with side size at least ``best_side + 1`` gives
    each of its vertices degree at least ``best_side + 1`` inside the
    biclique, so all of them survive in that core; everything outside can
    be discarded without losing an improving solution.
    """
    return k_core(graph, best_side + 1)
