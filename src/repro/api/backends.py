"""Built-in backend registrations.

Importing this module (which :mod:`repro.api` does on package import, and
the registry does lazily on first lookup) registers every solver shipped
with the library:

==================  =====================================================
name                solver
==================  =====================================================
``auto``            density-based choice between ``dense`` and ``sparse``
``dense``           Algorithm 3, ``denseMBB``
``sparse``          Algorithm 4, ``hbvMBB`` (the sparse framework)
``basic``           Algorithm 1, the unoptimised branch and bound
``size-constrained``  MBB through rising ``(k, k)`` decisions
``brute_force``     exhaustive oracle (small graphs only)
``extbbclq``        ExtBBClq, the state-of-the-art exact baseline
``mbe``             adapted maximal-biclique-enumeration engine
``adp1``..``adp4``  the paper's assembled baselines (heuristic + MBE)
``mvb``             polynomial maximum *vertex* biclique, balanced-trimmed
``local_search``    POLS / SBMNAS local search
==================  =====================================================

Every ``run`` implementation reports through the caller-owned
:class:`~repro.mbb.context.SearchContext`, so one context carries the
incumbent, the statistics, the budgets and the cancellation hook across
whichever backend executes.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional

from repro.api.registry import BackendInfo, FunctionBackend, register_backend
from repro.baselines.adapted import ADAPTED_BASELINES, run_adapted_baseline
from repro.baselines.brute_force import brute_force_mbb
from repro.baselines.extbbclq import ext_bbclq
from repro.baselines.local_search import pols, sbmnas
from repro.baselines.mbe import adapted_fmbe, adapted_imbea
from repro.baselines.mvb import maximum_vertex_biclique
from repro.exceptions import InvalidParameterError
from repro.graph.bipartite import BipartiteGraph
from repro.graph.prepared import PreparedGraph
from repro.mbb.basic_bb import basic_bb
from repro.mbb.context import SearchContext
from repro.mbb.dense import KERNEL_BITS, KERNEL_SETS, dense_mbb
from repro.mbb.result import Biclique, MBBResult
from repro.mbb.size_constrained import size_constrained_mbb
from repro.mbb.sparse import SparseConfig, hbv_mbb

_BOTH_KERNELS = (KERNEL_BITS, KERNEL_SETS)


def _run_dense(
    graph: BipartiteGraph,
    context: SearchContext,
    *,
    kernel: str,
    seed: int,
    initial_best: Optional[Biclique] = None,
    branching: Optional[str] = None,
) -> MBBResult:
    kwargs = {} if branching is None else {"branching": branching}
    return dense_mbb(
        graph, context=context, kernel=kernel, initial_best=initial_best, **kwargs
    )


def _run_sparse(
    graph: BipartiteGraph,
    context: SearchContext,
    *,
    kernel: str,
    seed: int,
    sparse_config: Optional[SparseConfig] = None,
    prepared: Optional[PreparedGraph] = None,
    parallel_s3: Optional[bool] = None,
) -> MBBResult:
    if sparse_config is None:
        config = SparseConfig(kernel=kernel)
    else:
        # An explicit config wins, including its kernel choice (matching
        # the historical ``solve_mbb`` contract); its budgets are adopted
        # by the shared context only when the caller set no budget of its
        # own (the engine expresses a request time budget as ``deadline``).
        config = sparse_config
        if context.node_budget is None and config.node_budget is not None:
            context.node_budget = config.node_budget
        if (
            context.time_budget is None
            and context.deadline is None
            and config.time_budget is not None
        ):
            context.time_budget = config.time_budget
    if parallel_s3 is not None:
        # A request-level switch overrides the config's S3 execution
        # mode but nothing else — the engine's wire-format knob, while a
        # programmatic caller keeps full control through SparseConfig.
        config = replace(config, parallel_s3=parallel_s3)
    return hbv_mbb(graph, config=config, context=context, prepared=prepared)


def _run_auto(
    graph: BipartiteGraph,
    context: SearchContext,
    *,
    kernel: str,
    seed: int,
    sparse_config: Optional[SparseConfig] = None,
    prepared: Optional[PreparedGraph] = None,
    parallel_s3: Optional[bool] = None,
) -> MBBResult:
    # The prepared snapshot only serves the sparse framework; the dense
    # resolution drops it (the dense solver indexes into bitsets itself),
    # as does the parallel-S3 switch (the dense solver has no S3).
    if resolve_auto(graph) == "dense":
        return _run_dense(graph, context, kernel=kernel, seed=seed)
    return _run_sparse(
        graph,
        context,
        kernel=kernel,
        seed=seed,
        sparse_config=sparse_config,
        prepared=prepared,
        parallel_s3=parallel_s3,
    )


def resolve_auto(graph: BipartiteGraph) -> str:
    """Backend name the ``auto`` backend picks for ``graph``."""
    from repro.mbb.solver import METHOD_DENSE, choose_method

    return "dense" if choose_method(graph) == METHOD_DENSE else "sparse"


def _run_basic(
    graph: BipartiteGraph, context: SearchContext, *, kernel: str, seed: int
) -> MBBResult:
    return basic_bb(graph, context=context)


def _run_size_constrained(
    graph: BipartiteGraph, context: SearchContext, *, kernel: str, seed: int
) -> MBBResult:
    return size_constrained_mbb(graph, kernel=kernel, context=context)


def _run_brute_force(
    graph: BipartiteGraph,
    context: SearchContext,
    *,
    kernel: str,
    seed: int,
    max_side: Optional[int] = None,
) -> MBBResult:
    kwargs = {} if max_side is None else {"max_side": max_side}
    context.offer_biclique(brute_force_mbb(graph, **kwargs))
    return MBBResult(
        biclique=context.best,
        optimal=True,
        stats=context.stats,
        elapsed_seconds=context.elapsed,
    )


def _run_extbbclq(
    graph: BipartiteGraph, context: SearchContext, *, kernel: str, seed: int
) -> MBBResult:
    return ext_bbclq(graph, context=context)


def _run_mbe(
    graph: BipartiteGraph,
    context: SearchContext,
    *,
    kernel: str,
    seed: int,
    engine: str = "imbea",
    use_core_bound: bool = True,
) -> MBBResult:
    engines = {"imbea": adapted_imbea, "fmbe": adapted_fmbe}
    if engine not in engines:
        raise InvalidParameterError(
            f"unknown MBE engine {engine!r}; expected one of {sorted(engines)}"
        )
    return engines[engine](graph, context=context, use_core_bound=use_core_bound)


def _make_adapted_runner(name: str):
    def run(
        graph: BipartiteGraph,
        context: SearchContext,
        *,
        kernel: str,
        seed: int,
        heuristic_iterations: int = 2000,
    ) -> MBBResult:
        return run_adapted_baseline(
            graph,
            name,
            context=context,
            seed=seed,
            heuristic_iterations=heuristic_iterations,
        )

    return run


def _run_mvb(
    graph: BipartiteGraph, context: SearchContext, *, kernel: str, seed: int
) -> MBBResult:
    context.offer_biclique(maximum_vertex_biclique(graph).balanced())
    return MBBResult(
        biclique=context.best,
        optimal=False,
        stats=context.stats,
        elapsed_seconds=context.elapsed,
    )


def _run_local_search(
    graph: BipartiteGraph,
    context: SearchContext,
    *,
    kernel: str,
    seed: int,
    variant: str = "pols",
    iterations: int = 2000,
) -> MBBResult:
    searchers = {"pols": pols, "sbmnas": sbmnas}
    if variant not in searchers:
        raise InvalidParameterError(
            f"unknown local-search variant {variant!r}; expected one of "
            f"{sorted(searchers)}"
        )
    context.offer_biclique(searchers[variant](graph, iterations=iterations, seed=seed))
    return MBBResult(
        biclique=context.best,
        optimal=False,
        stats=context.stats,
        elapsed_seconds=context.elapsed,
    )


def _register(name: str, function, **info_kwargs) -> None:
    register_backend(
        FunctionBackend(BackendInfo(name=name, **info_kwargs), function),
        replace=True,
    )


_register(
    "auto",
    _run_auto,
    description="density-based choice between denseMBB and hbvMBB",
    exact=True,
    kernels=_BOTH_KERNELS,
    supports_prepared=True,
)
_register(
    "dense",
    _run_dense,
    description="Algorithm 3 denseMBB (reductions, polynomial cases)",
    exact=True,
    kernels=_BOTH_KERNELS,
)
_register(
    "sparse",
    _run_sparse,
    description="Algorithm 4 hbvMBB (heuristic, bridging, verification)",
    exact=True,
    kernels=_BOTH_KERNELS,
    supports_prepared=True,
)
_register(
    "basic",
    _run_basic,
    description="Algorithm 1, the unoptimised branch and bound",
    exact=True,
)
_register(
    "size-constrained",
    _run_size_constrained,
    description="MBB through rising (k, k) size-constrained decisions",
    exact=True,
    kernels=_BOTH_KERNELS,
)
_register(
    "brute_force",
    _run_brute_force,
    description="exhaustive subset-enumeration oracle (small graphs only)",
    exact=True,
    supports_budgets=False,
)
_register(
    "extbbclq",
    _run_extbbclq,
    description="ExtBBClq exact baseline (Zhou, Rossi and Hao 2018)",
    exact=True,
)
_register(
    "mbe",
    _run_mbe,
    description="adapted maximal-biclique-enumeration engine (iMBEA/FMBE)",
    exact=True,
)
for _name in sorted(ADAPTED_BASELINES):
    _register(
        _name,
        _make_adapted_runner(_name),
        description="assembled baseline: local-search heuristic + adapted MBE",
        exact=True,
        supports_seed=True,
    )
_register(
    "mvb",
    _run_mvb,
    description="polynomial maximum vertex biclique, balanced-trimmed (heuristic)",
    exact=False,
    supports_budgets=False,
)
_register(
    "local_search",
    _run_local_search,
    description="POLS/SBMNAS local search (heuristic)",
    exact=False,
    supports_budgets=False,
    supports_seed=True,
)
