"""Tests for the adapted maximal-biclique-enumeration engines."""

from __future__ import annotations

import pytest

from repro.graph.bipartite import BipartiteGraph
from repro.graph.generators import (
    complete_bipartite,
    crown_graph,
    grid_union_of_bicliques,
    random_bipartite,
    random_power_law_bipartite,
)
from repro.baselines.brute_force import brute_force_side_size
from repro.baselines.mbe import adapted_fmbe, adapted_imbea


@pytest.mark.parametrize("engine", [adapted_imbea, adapted_fmbe])
class TestAdaptedEngines:
    def test_empty_graph(self, engine):
        assert engine(BipartiteGraph()).side_size == 0

    def test_complete_graph(self, engine):
        assert engine(complete_bipartite(4, 5)).side_size == 4

    @pytest.mark.parametrize("seed", range(12))
    def test_matches_brute_force(self, engine, seed, random_graph_factory):
        graph = random_graph_factory(seed, max_side=8)
        assert engine(graph).side_size == brute_force_side_size(graph)

    def test_without_core_bound_still_exact(self, engine):
        for seed in range(5):
            graph = random_bipartite(7, 7, 0.5, seed=seed)
            result = engine(graph, use_core_bound=False)
            assert result.side_size == brute_force_side_size(graph)

    def test_sparse_power_law(self, engine):
        from repro.mbb.dense import dense_mbb

        graph = random_power_law_bipartite(30, 30, 2.0, seed=1)
        # Too large for the brute-force oracle; cross-check against denseMBB.
        assert engine(graph).side_size == dense_mbb(graph).side_size

    def test_result_validity(self, engine):
        graph = grid_union_of_bicliques([3, 2], noise_edges=4, seed=2)
        result = engine(graph)
        assert result.biclique.is_valid_in(graph)
        assert result.biclique.is_balanced

    def test_budget_best_effort(self, engine):
        graph = random_bipartite(14, 14, 0.6, seed=3)
        result = engine(graph, node_budget=3)
        assert result.biclique.is_valid_in(graph)


class TestEngineDifferences:
    def test_crown_graphs_agree(self):
        for n in range(2, 7):
            graph = crown_graph(n)
            assert adapted_imbea(graph).side_size == adapted_fmbe(graph).side_size == n // 2
