"""Baseline I/O: the checked-in ledger of accepted findings.

The baseline lets the analyzer be adopted on a codebase with existing
findings without suppressing them inline: known findings are recorded in
a JSON file and only *new* findings fail the run.  Entries are keyed by
:attr:`~repro.devtools.lint.findings.Finding.fingerprint` (path + code +
message, no line numbers) with a multiplicity count, so the ledger
survives edits that move code around while still catching a second
occurrence of an already-baselined pattern.

The repository's goal state is an *empty* baseline — every invariant
violation fixed at the source — but the mechanism stays so a future PR
can land an intentionally-staged cleanup without turning CI red.  Any
entry that does land must carry a written ``justification`` explaining
why the finding is accepted rather than fixed; the field is preserved
verbatim through load/save round-trips so the reasoning lives next to
the suppression it defends.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Tuple

from repro.devtools.lint.findings import Finding, sort_findings

#: Current schema version of the baseline file.
BASELINE_VERSION = 1

#: Conventional baseline filename at the project root.
DEFAULT_BASELINE_NAME = "reprolint-baseline.json"


class BaselineError(ValueError):
    """Raised for malformed baseline files."""


class Baseline:
    """Multiset of accepted finding fingerprints."""

    def __init__(
        self,
        entries: Dict[str, int] | None = None,
        justifications: Dict[str, str] | None = None,
    ) -> None:
        self.entries: Dict[str, int] = dict(entries or {})
        #: Fingerprint → written justification for accepting the finding
        #: instead of fixing it (preserved through load/save).
        self.justifications: Dict[str, str] = dict(justifications or {})

    # ------------------------------------------------------------------
    # construction / serialisation
    # ------------------------------------------------------------------
    @classmethod
    def from_findings(
        cls,
        findings: Iterable[Finding],
        previous: "Baseline | None" = None,
    ) -> "Baseline":
        """Baseline accepting exactly the given findings.

        When ``previous`` is given, justifications for fingerprints that
        are still present carry over, so regenerating with
        ``--write-baseline`` never silently discards the written
        reasoning behind an accepted finding.
        """
        entries: Dict[str, int] = {}
        for finding in findings:
            entries[finding.fingerprint] = entries.get(finding.fingerprint, 0) + 1
        justifications: Dict[str, str] = {}
        if previous is not None:
            justifications = {
                fingerprint: text
                for fingerprint, text in previous.justifications.items()
                if fingerprint in entries
            }
        return cls(entries, justifications)

    @classmethod
    def from_dict(cls, payload: object) -> "Baseline":
        """Parse the JSON document form, validating the schema."""
        if not isinstance(payload, dict):
            raise BaselineError("baseline must be a JSON object")
        version = payload.get("version")
        if version != BASELINE_VERSION:
            raise BaselineError(
                f"unsupported baseline version {version!r} "
                f"(expected {BASELINE_VERSION})"
            )
        raw_entries = payload.get("entries", [])
        if not isinstance(raw_entries, list):
            raise BaselineError("baseline 'entries' must be a JSON array")
        entries: Dict[str, int] = {}
        justifications: Dict[str, str] = {}
        for raw in raw_entries:
            if not isinstance(raw, dict):
                raise BaselineError("baseline entries must be JSON objects")
            try:
                path = str(raw["path"])
                code = str(raw["code"])
                message = str(raw["message"])
                count = int(raw.get("count", 1))
            except (KeyError, TypeError, ValueError) as error:
                raise BaselineError(f"malformed baseline entry: {raw!r}") from error
            if count < 1:
                raise BaselineError(f"baseline count must be >= 1: {raw!r}")
            fingerprint = f"{path}::{code}::{message}"
            entries[fingerprint] = entries.get(fingerprint, 0) + count
            justification = raw.get("justification")
            if justification is not None:
                if not isinstance(justification, str) or not justification.strip():
                    raise BaselineError(
                        f"baseline justification must be a non-empty string: {raw!r}"
                    )
                justifications[fingerprint] = justification
        return cls(entries, justifications)

    def to_dict(self) -> Dict[str, object]:
        """JSON document form with deterministically sorted entries."""
        rows: List[Dict[str, object]] = []
        for fingerprint in sorted(self.entries):
            path, code, message = fingerprint.split("::", 2)
            row: Dict[str, object] = {
                "path": path,
                "code": code,
                "message": message,
                "count": self.entries[fingerprint],
            }
            if fingerprint in self.justifications:
                row["justification"] = self.justifications[fingerprint]
            rows.append(row)
        return {"version": BASELINE_VERSION, "tool": "reprolint", "entries": rows}

    @classmethod
    def load(cls, path: str) -> "Baseline":
        """Read a baseline file; a missing file is an empty baseline."""
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except FileNotFoundError:
            return cls()
        except json.JSONDecodeError as error:
            raise BaselineError(f"baseline {path!r} is not valid JSON: {error}") from error
        return cls.from_dict(payload)

    def save(self, path: str) -> None:
        """Write the baseline file (stable ordering, trailing newline)."""
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle, indent=2, sort_keys=False)
            handle.write("\n")

    # ------------------------------------------------------------------
    # filtering
    # ------------------------------------------------------------------
    def split(
        self, findings: Iterable[Finding]
    ) -> Tuple[List[Finding], List[Finding]]:
        """Partition findings into ``(new, baselined)``.

        Findings are consumed in canonical order and each fingerprint
        absorbs at most its baselined count, so an *extra* occurrence of
        an accepted pattern still surfaces as new.  Both partitions come
        back sorted.
        """
        remaining = dict(self.entries)
        new: List[Finding] = []
        accepted: List[Finding] = []
        for finding in sort_findings(findings):
            credit = remaining.get(finding.fingerprint, 0)
            if credit > 0:
                remaining[finding.fingerprint] = credit - 1
                accepted.append(finding)
            else:
                new.append(finding)
        return new, accepted

    def __len__(self) -> int:
        return sum(self.entries.values())

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Baseline) and self.entries == other.entries
