"""Tests for the ExtBBClq baseline."""

from __future__ import annotations

import pytest

from repro.graph.generators import (
    complete_bipartite,
    crown_graph,
    grid_union_of_bicliques,
    random_bipartite,
)
from repro.baselines.brute_force import brute_force_side_size
from repro.baselines.extbbclq import (
    ext_bbclq,
    tight_upper_bounds,
    vertex_upper_bounds,
)


class TestUpperBounds:
    def test_complete_graph_bounds(self):
        graph = complete_bipartite(4, 4)
        bounds = vertex_upper_bounds(graph)
        assert all(value == 4 for value in bounds.values())
        tight = tight_upper_bounds(graph, bounds)
        assert all(value == 4 for value in tight.values())

    def test_bounds_are_valid_upper_bounds(self):
        """No vertex bound may undercut the side of an MBB containing it."""
        for seed in range(6):
            graph = random_bipartite(7, 7, 0.6, seed=seed)
            optimum = brute_force_side_size(graph)
            tight = tight_upper_bounds(graph)
            # The optimum biclique contains at least one vertex on each side;
            # the maximum tight bound must therefore be >= optimum.
            assert max(tight.values(), default=0) >= optimum

    def test_isolated_vertex_has_zero_bound(self):
        graph = random_bipartite(3, 3, 0.0, seed=1)
        bounds = vertex_upper_bounds(graph)
        assert all(value == 0 for value in bounds.values())


class TestExtBBClq:
    @pytest.mark.parametrize("seed", range(15))
    def test_matches_brute_force(self, seed, random_graph_factory):
        graph = random_graph_factory(seed, max_side=8)
        assert ext_bbclq(graph).side_size == brute_force_side_size(graph)

    @pytest.mark.parametrize("n", range(2, 7))
    def test_crown_graphs(self, n):
        assert ext_bbclq(crown_graph(n)).side_size == n // 2

    def test_union_of_blocks(self):
        result = ext_bbclq(grid_union_of_bicliques([4, 2]))
        assert result.side_size == 4

    def test_budget_gives_best_effort(self):
        graph = random_bipartite(16, 16, 0.7, seed=1)
        result = ext_bbclq(graph, node_budget=5)
        assert not result.optimal
        assert result.biclique.is_valid_in(graph)

    def test_result_validity(self):
        graph = random_bipartite(10, 10, 0.5, seed=9)
        result = ext_bbclq(graph)
        assert result.biclique.is_valid_in(graph)
        assert result.biclique.is_balanced
