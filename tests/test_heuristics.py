"""Tests for the greedy heuristics and the hMBB stage (Algorithm 5)."""

from __future__ import annotations

import pytest

from repro.graph.bipartite import LEFT, RIGHT, BipartiteGraph
from repro.graph.bitset import IndexedBitGraph
from repro.graph.generators import (
    complete_bipartite,
    planted_balanced_biclique,
    random_bipartite,
    star_bipartite,
)
from repro.mbb.context import SearchAborted, SearchContext
from repro.mbb.heuristics import (
    core_heuristic,
    core_heuristic_bits,
    degree_heuristic,
    greedy_extend,
    greedy_extend_bits,
    h_mbb,
)
from repro.baselines.brute_force import brute_force_side_size


class TestGreedyExtend:
    def test_complete_graph_reaches_optimum(self):
        graph = complete_bipartite(4, 4)
        result = greedy_extend(graph, LEFT, 0)
        assert result.side_size == 4
        assert result.is_valid_in(graph)

    def test_star_graph_single_edge(self):
        graph = star_bipartite(5)
        result = greedy_extend(graph, LEFT, 0)
        assert result.side_size == 1

    def test_seed_on_right_side(self):
        graph = complete_bipartite(3, 5)
        result = greedy_extend(graph, RIGHT, 0)
        assert result.side_size == 3

    @pytest.mark.parametrize("seed", range(10))
    def test_result_is_always_a_valid_balanced_biclique(self, seed):
        graph = random_bipartite(10, 10, 0.4, seed=seed)
        for side, label in [(LEFT, 0), (RIGHT, 0)]:
            result = greedy_extend(graph, side, label)
            assert result.is_balanced
            assert result.is_valid_in(graph)

    @pytest.mark.parametrize("seed", range(10))
    def test_never_exceeds_optimum(self, seed):
        graph = random_bipartite(8, 8, 0.5, seed=seed)
        optimum = brute_force_side_size(graph)
        assert greedy_extend(graph, LEFT, 0).side_size <= optimum


class TestSeededHeuristics:
    def test_degree_heuristic_validity(self):
        graph = random_bipartite(15, 15, 0.4, seed=1)
        result = degree_heuristic(graph, top_r=4)
        assert result.is_balanced
        assert result.is_valid_in(graph)

    def test_core_heuristic_finds_planted_block(self):
        graph = planted_balanced_biclique(40, 40, 6, background_density=0.03, seed=2)
        result = core_heuristic(graph, top_r=6)
        assert result.side_size >= 5  # the planted block dominates the cores

    def test_degree_heuristic_on_empty_graph(self):
        assert degree_heuristic(BipartiteGraph()).side_size == 0

    def test_top_r_one_still_works(self):
        graph = random_bipartite(10, 10, 0.5, seed=3)
        assert degree_heuristic(graph, top_r=1).is_balanced


class TestBitsetHeuristics:
    @pytest.mark.parametrize("seed", range(10))
    def test_greedy_extend_bits_matches_sets(self, seed):
        """Identical tie-breaking: both kernels grow the same biclique."""
        graph = random_bipartite(12, 12, 0.4, seed=seed)
        bitgraph = IndexedBitGraph.from_bipartite(graph)
        for side in (LEFT, RIGHT):
            labels = bitgraph.left_labels if side == LEFT else bitgraph.right_labels
            for index, label in enumerate(labels[:4]):
                expected = greedy_extend(graph, side, label)
                assert greedy_extend_bits(bitgraph, side, index) == expected

    @pytest.mark.parametrize("seed", range(10))
    def test_core_heuristic_bits_matches_sets(self, seed):
        graph = random_bipartite(14, 14, 0.35, seed=seed)
        bitgraph = IndexedBitGraph.from_bipartite(graph)
        assert core_heuristic_bits(bitgraph) == core_heuristic(graph)

    def test_core_heuristic_bits_on_planted_graph(self):
        graph = planted_balanced_biclique(40, 40, 6, background_density=0.02, seed=3)
        bitgraph = IndexedBitGraph.from_bipartite(graph)
        result = core_heuristic_bits(bitgraph, top_r=6)
        assert result.side_size >= 5
        assert result.is_valid_in(graph)

    def test_greedy_extend_bits_validity(self):
        graph = random_bipartite(10, 10, 0.5, seed=2)
        bitgraph = IndexedBitGraph.from_bipartite(graph)
        result = greedy_extend_bits(bitgraph, LEFT, 0)
        assert result.is_balanced
        assert result.is_valid_in(graph)


class TestHeuristicBudgets:
    def test_degree_heuristic_checkpoint_aborts(self):
        graph = random_bipartite(10, 10, 0.4, seed=1)
        context = SearchContext()
        context.cancel()
        with pytest.raises(SearchAborted):
            degree_heuristic(graph, context=context)

    def test_h_mbb_returns_incumbent_on_abort(self):
        graph = random_bipartite(20, 20, 0.4, seed=2)
        context = SearchContext()
        seeds_tried = []
        context.cancel_hook = lambda: len(seeds_tried) >= 2 or bool(
            seeds_tried.append(None)
        )
        outcome = h_mbb(graph, context=context)
        assert context.aborted
        assert not outcome.proven_optimal
        assert outcome.best.is_valid_in(graph)
        # The two seeds that completed before the hook fired offered their
        # bicliques to the shared incumbent; aborting the third seed must
        # not discard that work.
        assert outcome.best.side_size > 0
        assert context.best_side == outcome.best.side_size


class TestHMBB:
    def test_outcome_fields(self):
        graph = planted_balanced_biclique(30, 30, 5, background_density=0.05, seed=4)
        outcome = h_mbb(graph)
        assert outcome.best.is_valid_in(graph)
        assert outcome.best.is_balanced
        assert outcome.reduced_graph.num_vertices <= graph.num_vertices

    def test_early_termination_on_complete_graph(self):
        graph = complete_bipartite(5, 5)
        outcome = h_mbb(graph)
        # The heuristic reaches side 5 and the degeneracy bound certifies it.
        assert outcome.best.side_size == 5
        assert outcome.proven_optimal

    def test_heuristic_never_exceeds_optimum(self):
        for seed in range(8):
            graph = random_bipartite(9, 9, 0.4, seed=seed)
            outcome = h_mbb(graph)
            assert outcome.best.side_size <= brute_force_side_size(graph)

    def test_reduction_keeps_improving_bicliques(self):
        for seed in range(6):
            graph = random_bipartite(9, 9, 0.5, seed=seed)
            optimum = brute_force_side_size(graph)
            outcome = h_mbb(graph)
            if outcome.proven_optimal:
                assert outcome.best.side_size == optimum
            else:
                # The residual graph must still contain an optimum solution
                # whenever the heuristic has not already found one.
                residual_best = (
                    brute_force_side_size(outcome.reduced_graph)
                    if outcome.reduced_graph.num_vertices
                    else 0
                )
                assert max(residual_best, outcome.best.side_size) == optimum

    def test_shares_context_incumbent(self):
        graph = complete_bipartite(4, 4)
        context = SearchContext()
        outcome = h_mbb(graph, context=context)
        assert context.best_side == outcome.best.side_size
