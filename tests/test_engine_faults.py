"""Chaos suite: deterministic fault injection against the pool layer.

Every test here arms a :mod:`repro.devtools.faults` plan — in-process or
through :envvar:`REPRO_FAULTS` for pool workers — and asserts the
engine's fault-tolerance contract: batches complete in request order,
failures are isolated to their request as structured error reports,
crash recovery is bounded and accounted for, and no shared-memory
segment outlives the engine.  Nothing in this file depends on timing
races: faults are keyed on request tags, so the same request fails the
same way every run.
"""

from __future__ import annotations

import os
import time
import warnings

import pytest

from repro.api import (
    STATUS_ABORTED,
    STATUS_ERROR,
    STATUS_OK,
    GraphSpec,
    MBBEngine,
    PreparedGraphCache,
    RetryPolicy,
    SolveRequest,
)
from repro.api.request import (
    ERROR_KIND_INJECTED_FAULT,
    ERROR_KIND_TIMEOUT,
    ERROR_KIND_WORKER_CRASH,
)
from repro.devtools import faults
from repro.devtools.faults import (
    ACTION_CORRUPT,
    ACTION_EXIT,
    ACTION_HANG,
    ACTION_RAISE,
    MAX_HANG_SECONDS,
    SCOPE_WORKER,
    FaultPlan,
    FaultSpec,
    InjectedFault,
)
from repro.exceptions import InvalidParameterError


@pytest.fixture(autouse=True)
def _disarm_after_each_test():
    yield
    faults.disarm()


def _shm_entries():
    if not os.path.isdir("/dev/shm"):
        return None
    return set(os.listdir("/dev/shm"))


def _assert_no_new_shm_segments(before, deadline_seconds=5.0):
    """Assert no /dev/shm entry survives beyond ``before`` (with a short
    grace period for the resource tracker's asynchronous unlink)."""
    if before is None:  # pragma: no cover - non-Linux fallback
        return
    deadline = time.monotonic() + deadline_seconds
    while True:
        leaked = _shm_entries() - before
        if not leaked:
            return
        if time.monotonic() > deadline:
            raise AssertionError(f"leaked shared-memory segments: {sorted(leaked)}")
        time.sleep(0.05)


def _requests(count, *, backend="dense", size=7, **kwargs):
    return [
        SolveRequest(
            graph=GraphSpec.random(size, size, 0.5, seed=seed),
            backend=backend,
            tag=f"g{seed}",
            **kwargs,
        )
        for seed in range(count)
    ]


class TestFaultSpecs:
    def test_entry_round_trip(self):
        spec = FaultSpec(
            point="worker.solve",
            action=ACTION_EXIT,
            nth=2,
            times=3,
            match="cell:sparse:g2",  # sweep tags contain ':'
            scope=SCOPE_WORKER,
        )
        assert FaultSpec.from_entry(spec.to_entry()) == spec

    def test_entry_omits_defaults(self):
        assert FaultSpec(point="shm.attach").to_entry() == "point=shm.attach"

    def test_plan_env_round_trip(self):
        plan = FaultPlan.of(
            FaultSpec(point="worker.hang", action=ACTION_HANG, arg=2.5),
            FaultSpec(point="worker.solve", match="g1", scope=SCOPE_WORKER),
        )
        assert FaultPlan.from_env(plan.to_env()) == plan

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"point": ""},
            {"point": "p", "action": "explode"},
            {"point": "p", "scope": "sometimes"},
            {"point": "p", "nth": 0},
            {"point": "p", "times": 0},
        ],
    )
    def test_invalid_specs_rejected(self, kwargs):
        with pytest.raises(InvalidParameterError):
            FaultSpec(**kwargs)

    def test_unknown_entry_field_rejected(self):
        with pytest.raises(InvalidParameterError):
            FaultSpec.from_entry("point=p,when=now")


class TestHitCounters:
    def test_nth_and_times_select_a_window_of_hits(self):
        faults.arm(FaultSpec(point="p", nth=2, times=2))
        faults.hit("p")  # 1st: below the window
        with pytest.raises(InjectedFault):
            faults.hit("p")  # 2nd
        with pytest.raises(InjectedFault):
            faults.hit("p")  # 3rd
        faults.hit("p")  # 4th: window exhausted

    def test_match_filters_on_hit_key(self):
        faults.arm(FaultSpec(point="p", match="g2"))
        faults.hit("p", key="g0")
        faults.hit("p", key="g1")
        with pytest.raises(InjectedFault):
            faults.hit("p", key="g2")

    def test_counters_are_per_spec(self):
        faults.arm(
            FaultSpec(point="p", match="a", nth=2),
            FaultSpec(point="p", match="b", nth=1),
        )
        faults.hit("p", key="a")  # spec 'a' count 1: no fire
        with pytest.raises(InjectedFault):
            faults.hit("p", key="b")  # spec 'b' fires on its own 1st hit
        with pytest.raises(InjectedFault):
            faults.hit("p", key="a")  # spec 'a' count 2

    def test_worker_scope_is_inert_in_the_parent_process(self):
        faults.arm(FaultSpec(point="p", scope=SCOPE_WORKER))
        faults.hit("p")  # would raise if scope were honoured here

    def test_plan_context_manager_arms_and_disarms(self):
        plan = FaultPlan.of(FaultSpec(point="p"))
        with plan:
            assert faults.armed() == plan.specs
            with pytest.raises(InjectedFault):
                faults.hit("p")
        assert faults.armed() == ()
        faults.hit("p")

    def test_env_armed_specs_fire(self, monkeypatch):
        plan = FaultPlan.of(FaultSpec(point="p", match="k"))
        monkeypatch.setenv(faults.ENV_VAR, plan.to_env())
        with pytest.raises(InjectedFault):
            faults.hit("p", key="k")

    def test_hang_sleep_is_capped(self, monkeypatch):
        slept = []
        monkeypatch.setattr(faults.time, "sleep", slept.append)
        faults.arm(FaultSpec(point="p", action=ACTION_HANG, arg=1e9))
        faults.hit("p")
        assert slept == [MAX_HANG_SECONDS]


class TestWorkerFaults:
    def test_injected_raise_isolates_one_request(self, monkeypatch):
        plan = FaultPlan.of(
            FaultSpec(
                point="worker.solve",
                action=ACTION_RAISE,
                match="g1",
                scope=SCOPE_WORKER,
            )
        )
        monkeypatch.setenv(faults.ENV_VAR, plan.to_env())
        before = _shm_entries()
        engine = MBBEngine(max_workers=2)
        try:
            reports = engine.solve_many(_requests(4))
        finally:
            engine.shutdown()
        assert [r.request.tag for r in reports] == ["g0", "g1", "g2", "g3"]
        assert [r.status for r in reports] == [
            STATUS_OK,
            STATUS_ERROR,
            STATUS_OK,
            STATUS_OK,
        ]
        failed = reports[1]
        assert failed.error is not None
        assert failed.error.kind == ERROR_KIND_INJECTED_FAULT
        assert failed.error.attempts == 1  # injected faults are not retryable
        _assert_no_new_shm_segments(before)

    def test_worker_death_mid_batch_recovers_deterministically(self, monkeypatch):
        # Acceptance criterion: a worker that dies hard (os._exit, as a
        # SIGKILL/OOM stand-in) on the request tagged g2 costs neither the
        # batch nor the other requests.  The pool is rebuilt up to
        # max_attempts submissions for g2; with in_process_fallback the
        # poison request then gets one in-process run (worker-scoped
        # faults are inert there) and still completes; the accounting is
        # exact because the fault follows the tag, not pool scheduling.
        plan = FaultPlan.of(
            FaultSpec(
                point="worker.solve",
                action=ACTION_EXIT,
                match="g2",
                times=3,  # every pool submission of g2 dies
                scope=SCOPE_WORKER,
            )
        )
        monkeypatch.setenv(faults.ENV_VAR, plan.to_env())
        before = _shm_entries()
        engine = MBBEngine(max_workers=2)
        try:
            reports = engine.solve_many(
                _requests(4), retry_policy=RetryPolicy(in_process_fallback=True)
            )
        finally:
            engine.shutdown()
        assert [r.request.tag for r in reports] == ["g0", "g1", "g2", "g3"]
        assert all(r.status == STATUS_OK for r in reports)
        poisoned = reports[2]
        # 3 crashed pool submissions + 1 in-process isolation run.
        assert poisoned.stats["worker_retries"] == 3
        assert poisoned.stats["pool_rebuilds"] == 3
        # The batch agrees with a fault-free serial run.
        serial = MBBEngine().solve_many(_requests(4), parallel=False)
        assert [r.side_size for r in reports] == [r.side_size for r in serial]
        _assert_no_new_shm_segments(before)

    def test_poison_request_errors_without_in_process_fallback(self, monkeypatch):
        # Default policy: a request that crashes every pool submission is
        # finished as a structured worker_crash report — it is NOT re-run
        # in the parent, where a genuine segfault/OOM would take the whole
        # batch (and every collected report) down with it.  With two
        # workers, g3 may be in flight when g2 first kills the pool; the
        # quarantine (crash suspects resubmit alone) guarantees that only
        # g2 can ever exhaust its attempts, so every other status is
        # deterministically ok.
        plan = FaultPlan.of(
            FaultSpec(
                point="worker.solve",
                action=ACTION_EXIT,
                match="g2",
                times=3,
                scope=SCOPE_WORKER,
            )
        )
        monkeypatch.setenv(faults.ENV_VAR, plan.to_env())
        before = _shm_entries()
        engine = MBBEngine(max_workers=2)
        try:
            reports = engine.solve_many(_requests(4))
        finally:
            engine.shutdown()
        assert [r.request.tag for r in reports] == ["g0", "g1", "g2", "g3"]
        poisoned = reports[2]
        assert poisoned.status == STATUS_ERROR
        assert poisoned.error is not None
        assert poisoned.error.kind == ERROR_KIND_WORKER_CRASH
        assert poisoned.error.attempts == 3  # max_attempts, all crashed
        assert poisoned.stats["worker_retries"] == 2
        assert poisoned.stats["pool_rebuilds"] == 3
        others = [r for i, r in enumerate(reports) if i != 2]
        assert all(r.status == STATUS_OK for r in others)
        _assert_no_new_shm_segments(before)

    def test_no_retry_policy_fails_fast_with_worker_crash_report(self, monkeypatch):
        plan = FaultPlan.of(
            FaultSpec(
                point="worker.solve",
                action=ACTION_EXIT,
                match="g1",
                times=3,
                scope=SCOPE_WORKER,
            )
        )
        monkeypatch.setenv(faults.ENV_VAR, plan.to_env())
        # One worker: requests run one at a time, so the crash costs
        # exactly the crashing request and the rest of the batch drains
        # deterministically.
        engine = MBBEngine(max_workers=1)
        try:
            reports = engine.solve_many(
                _requests(3), retry_policy=RetryPolicy.none()
            )
        finally:
            engine.shutdown()
        # max_attempts=1, max_pool_rebuilds=0, no in-process fallback: the
        # first crash is final and surfaces as a structured report.
        assert [r.status for r in reports] == [STATUS_OK, STATUS_ERROR, STATUS_OK]
        failed = reports[1]
        assert failed.error is not None
        assert failed.error.kind == ERROR_KIND_WORKER_CRASH
        assert failed.error.attempts == 1

    def test_poison_isolation_opt_in_recovers_on_first_crash(self, monkeypatch):
        plan = FaultPlan.of(
            FaultSpec(
                point="worker.solve",
                action=ACTION_EXIT,
                match="g1",
                times=3,
                scope=SCOPE_WORKER,
            )
        )
        monkeypatch.setenv(faults.ENV_VAR, plan.to_env())
        engine = MBBEngine(max_workers=2)
        try:
            reports = engine.solve_many(
                _requests(3),
                retry_policy=RetryPolicy(
                    max_attempts=1,
                    max_pool_rebuilds=0,
                    in_process_fallback=True,
                ),
            )
        finally:
            engine.shutdown()
        # max_attempts=1 with the opt-in: no pool retry, straight to
        # in-process isolation, where the worker-scoped fault cannot fire
        # — the request recovers.
        assert all(r.status == STATUS_OK for r in reports)
        assert reports[1].stats["worker_retries"] == 1
        assert reports[1].stats["pool_rebuilds"] == 1

    def test_queued_requests_do_not_burn_watchdog_budget(self, monkeypatch):
        # Regression: deadlines used to be stamped at submission time for
        # the whole batch, so with more requests than workers a slow first
        # wave falsely aborted every queued request once its
        # time_budget + grace elapsed — with the clock running while the
        # request was still waiting for a slot.  The deadline clock must
        # start only when a worker actually picks the request up.
        plan = FaultPlan.of(
            FaultSpec(
                point="worker.hang",
                action=ACTION_HANG,
                arg=1.5,
                match="g0",
                scope=SCOPE_WORKER,
            ),
            FaultSpec(
                point="worker.hang",
                action=ACTION_HANG,
                arg=1.5,
                match="g1",
                scope=SCOPE_WORKER,
            ),
        )
        monkeypatch.setenv(faults.ENV_VAR, plan.to_env())
        slow = _requests(2)  # g0, g1: no budget, stalled 1.5s by the fault
        fast = [
            SolveRequest(
                graph=GraphSpec.random(7, 7, 0.5, seed=seed),
                backend="dense",
                tag=f"g{seed}",
                time_budget=0.25,
            )
            for seed in (2, 3)
        ]
        engine = MBBEngine(max_workers=2)
        try:
            reports = engine.solve_many(
                slow + fast,
                retry_policy=RetryPolicy(watchdog_grace_seconds=0.25),
            )
        finally:
            engine.shutdown()
        # g2/g3 wait ~1.5s for a worker slot — three times their 0.5s
        # deadline — and must still complete, never be falsely aborted.
        assert [r.request.tag for r in reports] == ["g0", "g1", "g2", "g3"]
        assert [r.status for r in reports] == [STATUS_OK] * 4

    def test_hung_worker_is_aborted_by_the_watchdog(self, monkeypatch):
        plan = FaultPlan.of(
            FaultSpec(
                point="worker.hang",
                action=ACTION_HANG,
                arg=20.0,
                match="g1",
                scope=SCOPE_WORKER,
            )
        )
        monkeypatch.setenv(faults.ENV_VAR, plan.to_env())
        before = _shm_entries()
        engine = MBBEngine(max_workers=2)
        start = time.monotonic()
        try:
            reports = engine.solve_many(_requests(4), watchdog_seconds=2.0)
        finally:
            engine.shutdown()
        elapsed = time.monotonic() - start
        # Acceptance criterion: the batch returns within the watchdog bound
        # (plus pool teardown/rebuild slack), not after the 20s hang.
        assert elapsed < 15.0
        assert [r.request.tag for r in reports] == ["g0", "g1", "g2", "g3"]
        hung = reports[1]
        assert hung.status == STATUS_ABORTED
        assert hung.error is not None and hung.error.kind == ERROR_KIND_TIMEOUT
        others = [r for i, r in enumerate(reports) if i != 1]
        assert all(r.status == STATUS_OK for r in others)
        _assert_no_new_shm_segments(before)


class TestHandoffFaults:
    def _prepared_requests(self, count=3):
        # One power-law graph shared by the batch: the sparse backend
        # consumes PreparedGraph, so the shm handoff is in play.
        spec = GraphSpec.power_law(24, 24, 3.0, seed=5)
        return [
            SolveRequest(graph=spec, backend="sparse", tag=f"g{i}", seed=i)
            for i in range(count)
        ]

    def test_attach_failure_degrades_to_json_reprepare(self, monkeypatch):
        plan = FaultPlan.of(
            FaultSpec(point="shm.attach", action=ACTION_RAISE, scope=SCOPE_WORKER)
        )
        monkeypatch.setenv(faults.ENV_VAR, plan.to_env())
        before = _shm_entries()
        engine = MBBEngine(prepared_cache=PreparedGraphCache(), max_workers=2)
        try:
            reports = engine.solve_many(self._prepared_requests())
        finally:
            engine.shutdown()
        assert all(r.status == STATUS_OK for r in reports)
        assert len({r.side_size for r in reports}) == 1
        assert sum(r.stats.get("handoff_fallbacks", 0) for r in reports) >= 1
        _assert_no_new_shm_segments(before)

    def test_corrupted_segment_is_rejected_not_solved(self, monkeypatch):
        # Corrupt the first header byte (the magic) before the first
        # attach: format verification must reject the segment and every
        # request must fall back to re-preparing from JSON — same
        # answers, no solve over garbage.
        plan = FaultPlan.of(
            FaultSpec(
                point="shm.attach",
                action=ACTION_CORRUPT,
                arg=0.0,
                scope=SCOPE_WORKER,
            )
        )
        monkeypatch.setenv(faults.ENV_VAR, plan.to_env())
        before = _shm_entries()
        engine = MBBEngine(prepared_cache=PreparedGraphCache(), max_workers=2)
        try:
            reports = engine.solve_many(self._prepared_requests())
        finally:
            engine.shutdown()
        assert all(r.status == STATUS_OK for r in reports)
        assert sum(r.stats.get("handoff_fallbacks", 0) for r in reports) >= 1
        baseline = MBBEngine().solve_many(self._prepared_requests(), parallel=False)
        assert [r.side_size for r in reports] == [r.side_size for r in baseline]
        _assert_no_new_shm_segments(before)

    def test_export_failure_degrades_to_plain_json_submit(self):
        # Parent-side fault: arm in-process (no env, no worker scope).
        engine = MBBEngine(prepared_cache=PreparedGraphCache(), max_workers=2)
        try:
            with FaultPlan.of(
                FaultSpec(point="shm.export", action=ACTION_RAISE, times=99)
            ):
                reports = engine.solve_many(self._prepared_requests())
            stats = engine.prepared_cache.stats()
        finally:
            engine.shutdown()
        assert all(r.status == STATUS_OK for r in reports)
        assert stats["handoff_degradations"] >= 1

    def test_unexpected_export_failure_warns_and_degrades(self):
        engine = MBBEngine(prepared_cache=PreparedGraphCache())
        request = self._prepared_requests(1)[0]

        def explode(graph):
            raise RuntimeError("disk on fire")

        engine.prepared_cache.get = explode
        with pytest.warns(RuntimeWarning, match="RuntimeError"):
            handle = engine._shm_handle_for(request)
        assert handle is None
        assert engine.prepared_cache.stats()["handoff_degradations"] == 1
        engine.shutdown()

    def test_expected_export_failure_is_silent(self):
        engine = MBBEngine(prepared_cache=PreparedGraphCache())
        request = self._prepared_requests(1)[0]
        with FaultPlan.of(FaultSpec(point="shm.export", action=ACTION_RAISE)):
            with warnings.catch_warnings():
                warnings.simplefilter("error")
                handle = engine._shm_handle_for(request)
        assert handle is None
        assert engine.prepared_cache.stats()["handoff_degradations"] == 1
        engine.shutdown()
