"""Tests for the exception hierarchy and small internal utilities."""

from __future__ import annotations

import sys

import pytest

from repro._util import ensure_recursion_limit, recursion_headroom_for
from repro.exceptions import (
    BudgetExceededError,
    DatasetError,
    DuplicateVertexError,
    GraphError,
    GraphFormatError,
    InvalidEdgeError,
    InvalidParameterError,
    ReproError,
    SolverError,
    VertexNotFoundError,
)


class TestExceptionHierarchy:
    def test_everything_derives_from_repro_error(self):
        for exc_type in (
            GraphError,
            VertexNotFoundError,
            DuplicateVertexError,
            InvalidEdgeError,
            GraphFormatError,
            SolverError,
            InvalidParameterError,
            BudgetExceededError,
            DatasetError,
        ):
            assert issubclass(exc_type, ReproError)

    def test_vertex_errors_are_also_stdlib_errors(self):
        # Callers that only know about KeyError / ValueError still catch them.
        assert issubclass(VertexNotFoundError, KeyError)
        assert issubclass(DuplicateVertexError, ValueError)
        assert issubclass(InvalidParameterError, ValueError)

    def test_vertex_not_found_carries_context(self):
        error = VertexNotFoundError("L", 42)
        assert error.side == "L"
        assert error.vertex == 42
        assert "42" in str(error)

    def test_budget_exceeded_carries_best_so_far(self):
        error = BudgetExceededError("out of nodes", best="partial")
        assert error.best == "partial"

    def test_catching_the_base_class_catches_subclasses(self):
        with pytest.raises(ReproError):
            raise DatasetError("missing")


class TestRecursionUtilities:
    def test_headroom_scales_with_vertices(self):
        assert recursion_headroom_for(0) == 1000
        assert recursion_headroom_for(100) == 1400
        assert recursion_headroom_for(1000) > recursion_headroom_for(100)

    def test_ensure_recursion_limit_only_raises(self):
        original = sys.getrecursionlimit()
        try:
            ensure_recursion_limit(original - 100)
            assert sys.getrecursionlimit() == original
            ensure_recursion_limit(original + 123)
            assert sys.getrecursionlimit() == original + 123
        finally:
            sys.setrecursionlimit(original)
