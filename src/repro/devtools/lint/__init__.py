"""*reprolint* — the repository's AST-based invariant analyzer.

Generic linters enforce style; this package enforces the invariants the
repository has already paid for in fixed bugs: budget checkpoints in the
search stages (RPL001), determinism discipline (RPL002), bits/sets
kernel parity (RPL003), process-pool picklability (RPL004), and — via
the whole-project model in :mod:`repro.devtools.lint.project` (import
graph, symbol tables, conservative call graph) — shared prepared/CSR
state immutability (RPL005), interprocedural checkpoint reachability
(RPL006), layering/import-cycle discipline (RPL007) and wire-format
round-trip coverage (RPL008).  See :mod:`repro.devtools.lint.rules` for
the rule table and each rule module for the bug history it encodes.

Typical use::

    from repro.devtools.lint import Baseline, run_lint

    result = run_lint(["src", "tests"], root="/path/to/repo",
                      baseline=Baseline.load("reprolint-baseline.json"))
    assert result.exit_code == 0, result.new_findings

The ``repro-mbb lint`` CLI command and the CI ``invariants`` job are
thin wrappers over exactly this API.  Findings are suppressed per line
with ``# reprolint: disable=RPL001`` (comma-separated codes, or
``all``); pre-existing findings live in the checked-in baseline file
(``reprolint-baseline.json``), regenerated with
``repro-mbb lint --write-baseline``.
"""

from repro.devtools.lint.base import (
    PARSE_ERROR_CODE,
    FileContext,
    ProjectRule,
    Rule,
    RULE_REGISTRY,
    all_rules,
    register_rule,
    rule_table,
)
from repro.devtools.lint.baseline import (
    BASELINE_VERSION,
    Baseline,
    BaselineError,
    DEFAULT_BASELINE_NAME,
)
from repro.devtools.lint.findings import Finding, sort_findings
from repro.devtools.lint.report import (
    REPORT_SCHEMA_VERSION,
    render_json,
    render_text,
)
from repro.devtools.lint.project import (
    ImportRecord,
    ModuleInfo,
    ProjectContext,
    module_name_for,
)
from repro.devtools.lint.runner import (
    DEFAULT_LINT_PATHS,
    LintResult,
    analyze_file,
    build_project,
    iter_python_files,
    run_lint,
)

__all__ = [
    "BASELINE_VERSION",
    "Baseline",
    "BaselineError",
    "DEFAULT_BASELINE_NAME",
    "DEFAULT_LINT_PATHS",
    "FileContext",
    "Finding",
    "ImportRecord",
    "LintResult",
    "ModuleInfo",
    "PARSE_ERROR_CODE",
    "ProjectContext",
    "ProjectRule",
    "REPORT_SCHEMA_VERSION",
    "RULE_REGISTRY",
    "Rule",
    "all_rules",
    "analyze_file",
    "build_project",
    "iter_python_files",
    "module_name_for",
    "register_rule",
    "render_json",
    "render_text",
    "rule_table",
    "run_lint",
    "sort_findings",
]
