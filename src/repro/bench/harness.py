"""Shared helpers for the benchmark harness: backend dispatch, timing, tables.

Every table/figure runner dispatches solvers through :func:`run_backend`,
i.e. through the :mod:`repro.api` backend registry, so the bench suites
exercise exactly the code path the CLI and the engine expose — no more
direct calls into solver internals.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.graph.bipartite import BipartiteGraph
from repro.mbb.dense import KERNEL_BITS
from repro.mbb.result import MBBResult


def timed(function: Callable, *args, **kwargs) -> Tuple[object, float]:
    """Call ``function`` and return ``(result, elapsed_seconds)``."""
    start = time.perf_counter()
    result = function(*args, **kwargs)
    return result, time.perf_counter() - start


def run_backend(
    graph: BipartiteGraph,
    backend: str,
    *,
    kernel: str = KERNEL_BITS,
    node_budget: Optional[int] = None,
    time_budget: Optional[float] = None,
    seed: int = 0,
    **backend_options: object,
) -> Tuple[MBBResult, float]:
    """Time one registered backend on ``graph``.

    Returns ``(result, elapsed_seconds)``; extra keyword arguments are
    forwarded to the backend (e.g. ``initial_best`` for ``dense``,
    ``sparse_config`` for ``sparse``).
    """
    from repro.api.engine import MBBEngine

    result, elapsed = timed(
        MBBEngine().solve_graph,
        graph,
        backend=backend,
        kernel=kernel,
        node_budget=node_budget,
        time_budget=time_budget,
        seed=seed,
        **backend_options,
    )
    return result, elapsed  # type: ignore[return-value]


def format_cell(value: object) -> str:
    """Render one table cell: floats get three significant decimals."""
    if isinstance(value, float):
        if value == 0:
            return "0"
        if value >= 100:
            return f"{value:.1f}"
        if value >= 1:
            return f"{value:.2f}"
        return f"{value:.3f}"
    return str(value)


def format_table(rows: Sequence[Dict[str, object]], columns: Iterable[str] | None = None) -> str:
    """Render a list of row dictionaries as an aligned text table."""
    rows = list(rows)
    if not rows:
        return "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    columns = list(columns)
    rendered: List[List[str]] = [[format_cell(row.get(col, "")) for col in columns] for row in rows]
    widths = [
        max(len(col), *(len(line[i]) for line in rendered)) for i, col in enumerate(columns)
    ]
    header = "  ".join(col.ljust(widths[i]) for i, col in enumerate(columns))
    separator = "  ".join("-" * widths[i] for i in range(len(columns)))
    body = "\n".join(
        "  ".join(line[i].ljust(widths[i]) for i in range(len(columns))) for line in rendered
    )
    return "\n".join([header, separator, body])


def rows_to_csv(rows: Sequence[Dict[str, object]], columns: Iterable[str] | None = None) -> str:
    """Render rows as CSV text (used to archive results in EXPERIMENTS.md)."""
    rows = list(rows)
    if not rows:
        return ""
    if columns is None:
        columns = list(rows[0].keys())
    columns = list(columns)
    lines = [",".join(columns)]
    for row in rows:
        lines.append(",".join(format_cell(row.get(col, "")) for col in columns))
    return "\n".join(lines)
