"""Vertex-centred subgraphs (Definition 6, Observations 4-5, Lemmas 6-8).

Given a total search order ``o = (v_1, ..., v_{|L|+|R|})``, the subgraph
centred at ``v_i`` is induced by ``v_i`` together with those of its 1-hop
and 2-hop neighbours that appear *after* it in the order.  Every maximal
biclique is contained in the subgraph centred at its earliest vertex, so
searching each centred subgraph (with the centre forced into the result)
covers the whole graph without duplication.

The quality of the order determines how small and how dense the centred
subgraphs are; the bidegeneracy order bounds their total size by
``O((|L|+|R|) * δ̈)`` (Lemma 8), which is what makes the sparse framework
practical.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.graph.bipartite import LEFT, RIGHT, BipartiteGraph, Vertex
from repro.graph.bitset import IndexedBitGraph

VertexKey = Tuple[str, Vertex]


@dataclass
class VertexCentredSubgraph:
    """One centred subgraph together with its centre vertex."""

    center: VertexKey
    graph: BipartiteGraph
    position: int
    _bitgraph: Optional[IndexedBitGraph] = field(
        default=None, repr=False, compare=False
    )

    @property
    def center_side(self) -> str:
        """Which side (:data:`LEFT` / :data:`RIGHT`) the centre lies on."""
        return self.center[0]

    @property
    def center_label(self) -> Vertex:
        """The centre's vertex label."""
        return self.center[1]

    @property
    def size(self) -> int:
        """Number of vertices of the centred subgraph."""
        return self.graph.num_vertices

    @property
    def density(self) -> float:
        """Edge density of the centred subgraph (Figure 6 metric)."""
        return self.graph.density

    def to_bitgraph(self) -> IndexedBitGraph:
        """The centred subgraph as an :class:`IndexedBitGraph` (cached).

        The verification stage (Algorithm 8) consumes centred subgraphs in
        bitset form: core reduction and the exhaustive search then operate
        on masks and never materialise further ``BipartiteGraph`` copies.
        """
        if self._bitgraph is None:
            self._bitgraph = IndexedBitGraph.from_bipartite(self.graph)
        return self._bitgraph


def vertex_centred_subgraph(
    graph: BipartiteGraph,
    center: VertexKey,
    later: Dict[VertexKey, int],
    position: int,
) -> VertexCentredSubgraph:
    """Build the subgraph centred at ``center`` restricted to later vertices.

    ``later`` maps every vertex key to its position in the total order; a
    vertex participates when its position is strictly greater than
    ``position`` (the centre's own position).
    """
    side, label = center
    if side == LEFT:
        right_members = {
            v
            for v in graph.neighbors_left(label)
            if later[(RIGHT, v)] > position
        }
        left_members = {label}
        for v in right_members:
            for u in graph.neighbors_right(v):
                if u != label and later[(LEFT, u)] > position:
                    left_members.add(u)
    else:
        left_members = {
            u
            for u in graph.neighbors_right(label)
            if later[(LEFT, u)] > position
        }
        right_members = {label}
        for u in left_members:
            for v in graph.neighbors_left(u):
                if v != label and later[(RIGHT, v)] > position:
                    right_members.add(v)
    sub = graph.induced_subgraph(left_members, right_members)
    return VertexCentredSubgraph(center=center, graph=sub, position=position)


def iter_vertex_centred_subgraphs(
    graph: BipartiteGraph,
    order: Sequence[VertexKey],
) -> Iterator[VertexCentredSubgraph]:
    """Yield the centred subgraph of every vertex, following ``order``.

    Subgraphs are produced lazily so callers (``bridgeMBB``) can prune them
    one by one without materialising the whole family.
    """
    positions = {key: index for index, key in enumerate(order)}
    for index, key in enumerate(order):
        yield vertex_centred_subgraph(graph, key, positions, index)


def total_subgraph_size(graph: BipartiteGraph, order: Sequence[VertexKey]) -> int:
    """Total number of vertices over all centred subgraphs (Lemmas 6-8)."""
    return sum(sub.size for sub in iter_vertex_centred_subgraphs(graph, order))


def subgraph_density_profile(
    graph: BipartiteGraph, order: Sequence[VertexKey]
) -> List[float]:
    """Densities of all centred subgraphs with at least one edge candidate.

    Subgraphs whose centre has no later neighbours are skipped, matching
    how the paper reports the *average density of vertex centred
    subgraphs* in Figure 6 (empty slices would otherwise dominate the
    average with zeros).
    """
    densities: List[float] = []
    for sub in iter_vertex_centred_subgraphs(graph, order):
        if sub.graph.num_left > 0 and sub.graph.num_right > 0 and sub.graph.num_edges > 0:
            densities.append(sub.density)
    return densities
