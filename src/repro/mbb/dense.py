"""Algorithm 3: ``denseMBB`` — reduction, branch and bound for dense graphs.

The solver augments the basic enumeration with the three ingredients of the
paper's dense-graph contribution:

1. **Reductions** (Lemmas 1 and 2) applied at every node until fixpoint.
2. **Polynomial cases** (Lemma 3 / Algorithm 2): as soon as every candidate
   misses at most two neighbours on the other side, the node is handed to
   the path/cycle dynamic program instead of being branched.
3. **Triviality-last branching**: when branching is unavoidable, pick a
   vertex missing at least three neighbours; committing or discarding such
   a vertex shrinks the candidate sets quickly (worst branching factor
   ``(4, 1)``), which yields the ``O*(1.3803^n)`` bound and, on genuinely
   dense inputs, drives the search into the polynomial case within a few
   levels.

The ``branching`` parameter exposes a "naive" mode (no polynomial case, no
triviality-last selection) used by the ``bd3`` ablation of Table 6.
"""

from __future__ import annotations

from typing import Iterable, Optional, Set, Tuple

from repro._util import ensure_recursion_limit, recursion_headroom_for
from repro.exceptions import InvalidParameterError
from repro.graph.bipartite import BipartiteGraph, Vertex
from repro.mbb.bounds import is_bounded, offer_completions
from repro.mbb.context import SearchAborted, SearchContext
from repro.mbb.polynomial import is_polynomially_solvable, solve_polynomial_case
from repro.mbb.reductions import NodeState, reduce_node
from repro.mbb.result import Biclique, MBBResult

#: Branch on a vertex missing >= 3 neighbours (the paper's strategy).
BRANCH_TRIVIALITY_LAST = "triviality_last"
#: Branch on an arbitrary candidate and never invoke the polynomial solver.
BRANCH_NAIVE = "naive"

_BRANCHING_MODES = (BRANCH_TRIVIALITY_LAST, BRANCH_NAIVE)


def _select_branch_vertex(
    graph: BipartiteGraph, state: NodeState
) -> Optional[Tuple[str, Vertex, Set[Vertex]]]:
    """Pick the candidate vertex with the most missing neighbours (>= 3).

    Returns ``(side, vertex, neighbours_in_other_candidate_set)`` or
    ``None`` when every candidate misses at most two neighbours (i.e. the
    node is polynomially solvable).
    """
    best: Optional[Tuple[int, str, Vertex, Set[Vertex]]] = None
    for u in state.ca:
        neighbours = graph.neighbors_left(u) & state.cb
        missing = len(state.cb) - len(neighbours)
        if missing >= 3 and (best is None or missing > best[0]):
            best = (missing, "L", u, neighbours)
    for v in state.cb:
        neighbours = graph.neighbors_right(v) & state.ca
        missing = len(state.ca) - len(neighbours)
        if missing >= 3 and (best is None or missing > best[0]):
            best = (missing, "R", v, neighbours)
    if best is None:
        return None
    return best[1], best[2], best[3]


def _select_any_vertex(
    graph: BipartiteGraph, state: NodeState
) -> Optional[Tuple[str, Vertex, Set[Vertex]]]:
    """Naive branching: pick the candidate on the lagging side, any vertex."""
    prefer_left = len(state.a) <= len(state.b)
    if prefer_left and state.ca:
        u = max(state.ca, key=lambda x: (len(graph.neighbors_left(x) & state.cb), repr(x)))
        return "L", u, graph.neighbors_left(u) & state.cb
    if state.cb:
        v = max(state.cb, key=lambda x: (len(graph.neighbors_right(x) & state.ca), repr(x)))
        return "R", v, graph.neighbors_right(v) & state.ca
    if state.ca:
        u = max(state.ca, key=lambda x: (len(graph.neighbors_left(x) & state.cb), repr(x)))
        return "L", u, graph.neighbors_left(u) & state.cb
    return None


def _dense_mbb(
    graph: BipartiteGraph,
    context: SearchContext,
    state: NodeState,
    depth: int,
    branching: str,
) -> None:
    context.enter_node(depth)
    if is_bounded(context, len(state.a), len(state.b), len(state.ca), len(state.cb)):
        context.stats.bound_prunes += 1
        context.record_leaf(depth)
        return

    reduce_node(graph, state, context)
    offer_completions(context, state.a, state.b, state.ca, state.cb)
    if is_bounded(context, len(state.a), len(state.b), len(state.ca), len(state.cb)):
        context.stats.bound_prunes += 1
        context.record_leaf(depth)
        return
    if not state.ca or not state.cb:
        context.record_leaf(depth)
        return

    if branching == BRANCH_TRIVIALITY_LAST:
        selection = _select_branch_vertex(graph, state)
        if selection is None:
            # Lemma 3 applies: hand the node to the polynomial solver.
            context.stats.polynomial_cases += 1
            context.record_leaf(depth)
            result = solve_polynomial_case(graph, state, context)
            if result is not None:
                context.offer_biclique(result)
            return
    else:
        selection = _select_any_vertex(graph, state)
        if selection is None:
            context.record_leaf(depth)
            return

    side, vertex, neighbours = selection
    if side == "L":
        include = NodeState(
            state.a | {vertex}, set(state.b), state.ca - {vertex}, set(neighbours)
        )
        exclude = NodeState(
            set(state.a), set(state.b), state.ca - {vertex}, set(state.cb)
        )
    else:
        include = NodeState(
            set(state.a), state.b | {vertex}, set(neighbours), state.cb - {vertex}
        )
        exclude = NodeState(
            set(state.a), set(state.b), set(state.ca), state.cb - {vertex}
        )
    _dense_mbb(graph, context, include, depth + 1, branching)
    _dense_mbb(graph, context, exclude, depth + 1, branching)


def dense_mbb_on_sets(
    graph: BipartiteGraph,
    context: SearchContext,
    a: Iterable[Vertex],
    b: Iterable[Vertex],
    ca: Iterable[Vertex],
    cb: Iterable[Vertex],
    *,
    branching: str = BRANCH_TRIVIALITY_LAST,
    depth: int = 0,
) -> None:
    """Run ``denseMBB`` from an arbitrary node (used by ``verifyMBB``).

    The caller provides the partial biclique ``(a, b)`` and the candidate
    sets; results are reported through ``context``.  The candidate sets
    must already satisfy the solver invariant (every candidate adjacent to
    the whole opposite partial side).
    """
    if branching not in _BRANCHING_MODES:
        raise InvalidParameterError(
            f"unknown branching mode {branching!r}; expected one of {_BRANCHING_MODES}"
        )
    state = NodeState(set(a), set(b), set(ca), set(cb))
    try:
        _dense_mbb(graph, context, state, depth, branching)
    except SearchAborted:
        pass


def dense_mbb(
    graph: BipartiteGraph,
    *,
    context: Optional[SearchContext] = None,
    initial_best: Optional[Biclique] = None,
    branching: str = BRANCH_TRIVIALITY_LAST,
    node_budget: Optional[int] = None,
    time_budget: Optional[float] = None,
) -> MBBResult:
    """Find a maximum balanced biclique with the dense-graph algorithm.

    Parameters
    ----------
    graph:
        The bipartite graph to search.  The algorithm is correct on any
        bipartite graph; it is *fast* on dense ones (edge density roughly
        0.7 and above), where it converges to polynomially solvable
        subproblems within a near-constant number of branchings.
    context:
        Optional pre-seeded search context (shared incumbent / budgets).
    initial_best:
        Optional known balanced biclique used to seed the incumbent.
    branching:
        :data:`BRANCH_TRIVIALITY_LAST` (default) or :data:`BRANCH_NAIVE`
        for the ``bd3`` ablation.
    node_budget, time_budget:
        Optional budgets; exhausted budgets return ``optimal=False``.
    """
    if branching not in _BRANCHING_MODES:
        raise InvalidParameterError(
            f"unknown branching mode {branching!r}; expected one of {_BRANCHING_MODES}"
        )
    if context is None:
        context = SearchContext(node_budget=node_budget, time_budget=time_budget)
    if initial_best is not None:
        context.offer_biclique(initial_best)
    ensure_recursion_limit(recursion_headroom_for(graph.num_vertices))
    optimal = True
    state = NodeState(set(), set(), graph.left, graph.right)
    try:
        _dense_mbb(graph, context, state, 0, branching)
    except SearchAborted:
        optimal = False
    return MBBResult(
        biclique=context.best,
        optimal=optimal,
        stats=context.stats,
        elapsed_seconds=context.elapsed,
    )
