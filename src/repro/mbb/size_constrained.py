"""The size-constrained ``(a, b)`` biclique problem (paper §4.2).

The paper's polynomial case is built on the *size-constrained biclique
problem*: given integers ``(a, b)``, decide whether the graph contains a
biclique ``(A, B)`` with ``|A| >= a`` and ``|B| >= b``, and the *maximal
instances* of that problem — the Pareto frontier of achievable ``(a, b)``
pairs.  This module exposes both as a small public API:

* :func:`find_biclique_of_size` / :func:`has_biclique_of_size` solve one
  ``(a, b)`` instance exactly with a dedicated branch and bound;
* :func:`maximal_biclique_profile` computes the full Pareto frontier of
  maximal ``(a, b)`` pairs (the object Observation 2 enumerates in closed
  form for complement paths and cycles), which is useful in its own right
  for co-clustering applications that trade rows for columns;
* :func:`size_constrained_mbb` solves the MBB problem through a sequence
  of ``(k, k)`` decisions — the ``size-constrained`` backend of the
  :mod:`repro.api` registry.

Both are exponential in the worst case (the problems are NP-hard for
general ``a = b``) and intended for moderate graphs or pruned subgraphs;
they accept the same node/time budgets as every other solver.

Kernels
-------
With the default :data:`~repro.mbb.dense.KERNEL_BITS` an ``(a, b)``
instance is decided by the bitset ``denseMBB`` kernel
(:func:`~repro.mbb.dense.dense_mbb_on_bitgraph`) through a padding
reduction: assuming ``a >= b``, add ``a - b`` universal right vertices
(adjacent to every left vertex); the padded graph has a balanced biclique
of side ``a`` iff the original graph has an ``(a, b)`` biclique, because
any ``a`` right vertices of the padded graph include at least ``b`` real
ones.  The decision search seeds the incumbent bound at ``a - 1`` so the
kernel prunes everything that cannot reach the target, and a cooperative
cancellation hook (:attr:`~repro.mbb.context.SearchContext.cancel_hook`)
stops it at the first witness.  ``kernel="sets"`` keeps the original
dedicated adjacency-set search for ablations.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Set, Tuple

from repro._util import ensure_recursion_limit, recursion_headroom_for
from repro.exceptions import InvalidParameterError
from repro.graph.bipartite import BipartiteGraph, Vertex
from repro.graph.bitset import IndexedBitGraph
from repro.mbb.context import SearchAborted, SearchContext
from repro.mbb.dense import KERNEL_BITS, KERNEL_SETS, dense_mbb_on_bitgraph
from repro.mbb.result import Biclique, MBBResult, SearchStats


def _search(
    graph: BipartiteGraph,
    context: SearchContext,
    a_target: int,
    b_target: int,
    a: Set[Vertex],
    b: Set[Vertex],
    ca: Set[Vertex],
    cb: Set[Vertex],
    depth: int,
) -> Optional[Biclique]:
    """Depth-first search for a biclique with ``|A| >= a_target, |B| >= b_target``.

    The invariant is the usual one: every candidate in ``ca`` is adjacent to
    all of ``b`` and every candidate in ``cb`` to all of ``a``.  The search
    succeeds as soon as both targets are reachable by one-sided completion.
    """
    context.enter_node(depth)
    if len(a) + len(ca) < a_target or len(b) + len(cb) < b_target:
        context.record_leaf(depth)
        return None
    if len(a) >= a_target and len(b) >= b_target:
        context.record_leaf(depth)
        return Biclique.of(a, b)

    # One-sided completions: candidates are adjacent to the whole opposite
    # partial side, so either side can be topped up for free.
    if len(a) >= a_target and len(b) + len(cb) >= b_target:
        needed = b_target - len(b)
        extra = sorted(cb, key=repr)[:needed]
        context.record_leaf(depth)
        return Biclique.of(a, set(b) | set(extra))
    if len(b) >= b_target and len(a) + len(ca) >= a_target:
        needed = a_target - len(a)
        extra = sorted(ca, key=repr)[:needed]
        context.record_leaf(depth)
        return Biclique.of(set(a) | set(extra), b)

    # Branch on the side that is still short, preferring the candidate with
    # the largest surviving neighbourhood.
    extend_left = (a_target - len(a)) >= (b_target - len(b))
    if extend_left and ca:
        vertex = max(ca, key=lambda u: (len(graph.neighbors_left(u) & cb), repr(u)))
        include = _search(
            graph,
            context,
            a_target,
            b_target,
            a | {vertex},
            b,
            ca - {vertex},
            cb & graph.neighbors_left(vertex),
            depth + 1,
        )
        if include is not None:
            return include
        return _search(
            graph, context, a_target, b_target, a, b, ca - {vertex}, cb, depth + 1
        )
    if cb:
        vertex = max(cb, key=lambda v: (len(graph.neighbors_right(v) & ca), repr(v)))
        include = _search(
            graph,
            context,
            a_target,
            b_target,
            a,
            b | {vertex},
            ca & graph.neighbors_right(vertex),
            cb - {vertex},
            depth + 1,
        )
        if include is not None:
            return include
        return _search(
            graph, context, a_target, b_target, a, b, ca, cb - {vertex}, depth + 1
        )
    context.record_leaf(depth)
    return None


# Tag making padding vertex labels collision-proof against user labels
# while keeping a deterministic ``repr`` (the bitset indexing and the
# balancing trim both order vertices by ``repr``).
_PAD_TAG = "repro.size_constrained.pad"


def _padded_graph(
    graph: BipartiteGraph, a: int, b: int
) -> Tuple[BipartiteGraph, Set[Vertex]]:
    """Copy ``graph`` and add ``|a - b|`` universal vertices on the short side.

    Assuming WLOG ``a >= b``: every set of ``a`` right vertices of the
    padded graph contains at least ``a - (a - b) = b`` real ones, so the
    padded graph has a balanced biclique of side ``a`` iff the original
    graph has an ``(a, b)`` biclique.
    """
    padded = BipartiteGraph(
        left=graph.left_vertices(), right=graph.right_vertices(), edges=graph.edges()
    )
    pad_labels: Set[Vertex] = {(_PAD_TAG, i) for i in range(abs(a - b))}
    if a >= b:
        for pad in sorted(pad_labels, key=repr):
            padded.add_right_vertex(pad)
            for u in graph.left_vertices():
                padded.add_edge(u, pad)
    else:
        for pad in sorted(pad_labels, key=repr):
            padded.add_left_vertex(pad)
            for v in graph.right_vertices():
                padded.add_edge(pad, v)
    return padded, pad_labels


def _seed_bound(context: SearchContext, side: int) -> None:
    """Seed the incumbent bound at ``side`` with sentinel vertices.

    The sentinels never touch the graph; they only make ``best_side``
    equal ``side`` so the kernel's bound prunes everything that cannot
    beat it.  Callers must treat a final ``best_side <= side`` as "no
    witness found".
    """
    if side > 0:
        context.best = Biclique.of(
            [(_PAD_TAG, "seed-left", i) for i in range(side)],
            [(_PAD_TAG, "seed-right", i) for i in range(side)],
        )


class _ParentCancelled:
    """Hook polling a parent context's cooperative-cancellation state.

    A module-level callable object (not a closure) so a child context
    carrying it stays picklable — the property parallel S3 relies on to
    hand contexts to pool workers (reprolint RPL004).
    """

    __slots__ = ("parent",)

    def __init__(self, parent: SearchContext) -> None:
        self.parent = parent

    def __call__(self) -> bool:
        parent = self.parent
        return parent.cancelled or (
            parent.cancel_hook is not None and parent.cancel_hook()
        )


class _AnyHook:
    """Hook firing when any of its member hooks fires (picklable compose)."""

    __slots__ = ("hooks",)

    def __init__(self, *hooks: Optional[Callable[[], bool]]) -> None:
        self.hooks = tuple(hook for hook in hooks if hook is not None)

    def __call__(self) -> bool:
        return any(hook() for hook in self.hooks)


class _TargetSideReached:
    """Hook stopping a decision search at its first ``(a, b)`` witness."""

    __slots__ = ("context", "target")

    def __init__(self, context: SearchContext, target: int) -> None:
        self.context = context
        self.target = target

    def __call__(self) -> bool:
        return self.context.best_side >= self.target


def _parent_cancelled(parent: Optional[SearchContext]):
    """Predicate polling a parent context's cooperative-cancellation state."""
    if parent is None:
        return None
    return _ParentCancelled(parent)


def _inherit_cancellation(
    child: SearchContext, parent: Optional[SearchContext]
) -> None:
    """Forward a parent's deadline and cancellation into a child context."""
    if parent is None:
        return
    child.deadline = parent.deadline
    hook = _parent_cancelled(parent)
    own = child.cancel_hook
    if own is None:
        child.cancel_hook = hook
    else:
        child.cancel_hook = _AnyHook(own, hook)


def _decide_sets(
    graph: BipartiteGraph,
    a: int,
    b: int,
    *,
    node_budget: Optional[int] = None,
    time_budget: Optional[float] = None,
    parent: Optional[SearchContext] = None,
) -> Tuple[Optional[Biclique], bool, SearchStats]:
    """Decide one ``(a, b)`` instance with the dedicated adjacency-set search."""
    ensure_recursion_limit(recursion_headroom_for(graph.num_vertices))
    context = SearchContext(node_budget=node_budget, time_budget=time_budget)
    _inherit_cancellation(context, parent)
    try:
        witness = _search(
            graph, context, a, b, set(), set(), graph.left, graph.right, 0
        )
    except SearchAborted:
        witness = None
    return witness, context.aborted, context.stats


def _decide_bits(
    graph: BipartiteGraph,
    a: int,
    b: int,
    *,
    node_budget: Optional[int] = None,
    time_budget: Optional[float] = None,
    parent: Optional[SearchContext] = None,
) -> Optional[Tuple[Optional[Biclique], bool, SearchStats]]:
    """Decide one ``(a, b)`` instance on the bitset ``denseMBB`` kernel.

    Returns ``None`` when the graph's labels resist bitset indexing, in
    which case the caller falls back to the adjacency-set search.
    """
    target = max(a, b)
    padded, pad_labels = _padded_graph(graph, a, b)
    try:
        bitgraph = IndexedBitGraph.from_bipartite(padded)
    except (TypeError, OverflowError):
        return None
    ensure_recursion_limit(recursion_headroom_for(padded.num_vertices))
    context = SearchContext(node_budget=node_budget, time_budget=time_budget)
    _seed_bound(context, target - 1)
    # Stop at the first witness: the hook is polled at every node entry.
    context.cancel_hook = _TargetSideReached(context, target)
    _inherit_cancellation(context, parent)
    dense_mbb_on_bitgraph(
        bitgraph,
        context,
        0,
        0,
        bitgraph.all_left_mask,
        bitgraph.all_right_mask,
    )
    if context.best_side < target:
        # ``aborted`` distinguishes an exhausted budget from a proven "no".
        # A cancellation can only have been triggered by reaching the
        # target, so any abort seen here came from a budget.
        return None, context.aborted, context.stats
    best = context.best
    if a >= b:
        witness = Biclique.of(best.left, set(best.right) - pad_labels)
    else:
        witness = Biclique.of(set(best.left) - pad_labels, best.right)
    return witness, False, context.stats


def _decide(
    graph: BipartiteGraph,
    a: int,
    b: int,
    *,
    kernel: str = KERNEL_BITS,
    node_budget: Optional[int] = None,
    time_budget: Optional[float] = None,
    parent: Optional[SearchContext] = None,
) -> Tuple[Optional[Biclique], bool, SearchStats]:
    """Dispatch one nontrivial ``(a, b)`` decision to the requested kernel."""
    if kernel not in (KERNEL_BITS, KERNEL_SETS):
        raise InvalidParameterError(
            f"unknown kernel {kernel!r}; expected one of {(KERNEL_BITS, KERNEL_SETS)}"
        )
    if kernel == KERNEL_BITS:
        outcome = _decide_bits(
            graph, a, b, node_budget=node_budget, time_budget=time_budget, parent=parent
        )
        if outcome is not None:
            return outcome
    return _decide_sets(
        graph, a, b, node_budget=node_budget, time_budget=time_budget, parent=parent
    )


def find_biclique_of_size(
    graph: BipartiteGraph,
    a: int,
    b: int,
    *,
    kernel: str = KERNEL_BITS,
    node_budget: Optional[int] = None,
    time_budget: Optional[float] = None,
) -> Optional[Biclique]:
    """Return a biclique with ``|A| >= a`` and ``|B| >= b``, or ``None``.

    Raises :class:`InvalidParameterError` for negative targets.  A ``(0, 0)``
    instance is satisfied by the empty biclique.  When a budget is exhausted
    before a witness is found the function returns ``None`` (the caller can
    inspect the budget through its own :class:`SearchContext` if needed).

    ``kernel`` selects :data:`~repro.mbb.dense.KERNEL_BITS` (default, the
    padding reduction onto the bitset ``denseMBB`` kernel) or
    :data:`~repro.mbb.dense.KERNEL_SETS` (the dedicated adjacency-set
    search, kept for ablation).
    """
    if a < 0 or b < 0:
        raise InvalidParameterError(f"size targets must be non-negative, got ({a}, {b})")
    if a == 0 and b == 0:
        return Biclique.empty()
    if a > graph.num_left or b > graph.num_right:
        return None
    if a == 0:
        return Biclique.of((), sorted(graph.right, key=repr)[:b])
    if b == 0:
        return Biclique.of(sorted(graph.left, key=repr)[:a], ())
    witness, _, _ = _decide(
        graph, a, b, kernel=kernel, node_budget=node_budget, time_budget=time_budget
    )
    return witness


def has_biclique_of_size(graph: BipartiteGraph, a: int, b: int, **kwargs) -> bool:
    """Decision version of :func:`find_biclique_of_size`."""
    return find_biclique_of_size(graph, a, b, **kwargs) is not None


def size_constrained_mbb(
    graph: BipartiteGraph,
    *,
    kernel: str = KERNEL_BITS,
    context: Optional[SearchContext] = None,
    node_budget: Optional[int] = None,
    time_budget: Optional[float] = None,
) -> MBBResult:
    """Solve the MBB problem through a rising sequence of ``(k, k)`` decisions.

    This is the ``size-constrained`` backend of the :mod:`repro.api`
    registry: starting from the incumbent (if ``context`` carries one) it
    asks :func:`find_biclique_of_size` for a ``(k, k)`` biclique with
    ``k`` increasing until a decision comes back negative, which proves
    optimality.  Exact but slower than ``denseMBB`` — each decision
    re-explores the graph — and registered mainly for ablation and as an
    independent cross-check of the dense kernel.
    """
    if context is None:
        context = SearchContext(node_budget=node_budget, time_budget=time_budget)
    max_side = min(graph.num_left, graph.num_right)
    optimal = True
    k = context.best_side + 1
    while k <= max_side:
        # One checkpoint covers cancellation, the deadline and both
        # budgets between (k, k) decisions; an abort leaves the incumbent
        # as a best-effort answer exactly like a budget blown mid-kernel.
        try:
            context.checkpoint(enforce_node_budget=True)
        except SearchAborted:
            optimal = False
            break
        witness, aborted, stats = _decide(
            graph,
            k,
            k,
            kernel=kernel,
            node_budget=context.remaining_node_budget(),
            time_budget=context.remaining_time_budget(),
            parent=context,
        )
        context.stats.merge(stats)
        if witness is None:
            optimal = not aborted
            break
        context.offer_biclique(witness)
        k = context.best_side + 1
    return MBBResult(
        biclique=context.best,
        optimal=optimal,
        stats=context.stats,
        elapsed_seconds=context.elapsed,
    )


def maximal_biclique_profile(
    graph: BipartiteGraph,
    *,
    max_side: Optional[int] = None,
    kernel: str = KERNEL_BITS,
    node_budget: Optional[int] = None,
    time_budget: Optional[float] = None,
) -> List[Tuple[int, int]]:
    """Pareto frontier of achievable ``(|A|, |B|)`` biclique sizes.

    The returned list contains every *maximal instance* in the paper's sense:
    pairs ``(a, b)`` such that an ``(a, b)`` biclique exists but neither
    ``(a + 1, b)`` nor ``(a, b + 1)`` does.  Pairs are sorted by decreasing
    ``a``.  Trivial instances with an empty side are included (``(a_max, 0)``
    and ``(0, b_max)``) because the combination DP of Algorithm 2 consumes
    them.

    ``max_side`` caps the explored ``a`` range (useful on larger graphs when
    only small profiles are of interest).
    """
    a_cap = graph.num_left if max_side is None else min(max_side, graph.num_left)
    b_cap = graph.num_right if max_side is None else min(max_side, graph.num_right)

    # For each a in 0..a_cap find the largest b such that an (a, b) biclique
    # exists; b is monotonically non-increasing in a, which the loop exploits
    # by starting each scan from the previous best.
    frontier: Dict[int, int] = {}
    previous_best = b_cap
    for a in range(0, a_cap + 1):
        best_b = -1
        for b in range(previous_best, -1, -1):
            witness = find_biclique_of_size(
                graph,
                a,
                b,
                kernel=kernel,
                node_budget=node_budget,
                time_budget=time_budget,
            )
            if witness is not None:
                best_b = b
                break
        if best_b < 0:
            break
        frontier[a] = best_b
        previous_best = best_b

    # Keep only Pareto-maximal pairs.
    result: List[Tuple[int, int]] = []
    best_seen_b = -1
    for a in sorted(frontier, reverse=True):
        b = frontier[a]
        if b > best_seen_b:
            result.append((a, b))
            best_seen_b = b
    result.sort(key=lambda pair: -pair[0])
    return result


def balanced_side_from_profile(profile: List[Tuple[int, int]]) -> int:
    """Largest balanced side implied by a profile (``max min(a, b)``)."""
    return max((min(a, b) for a, b in profile), default=0)
