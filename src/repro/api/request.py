"""The engine's wire format: graph sources, solve requests, solve reports.

The CLI, the benchmark harness, the process-pool batch executor and any
future server all speak this one format: a :class:`SolveRequest` says
*what to solve and how* (graph source, backend name, kernel, budgets,
seed) and a :class:`SolveReport` says *what happened* (the biclique,
optimality, statistics, timings, backend provenance and library version).
Both round-trip losslessly through JSON — ``from_json(x.to_json()) == x``
— which is what lets :meth:`MBBEngine.solve_many
<repro.api.engine.MBBEngine.solve_many>` ship requests to worker
processes as plain strings and what makes ``repro-mbb solve --json``
output machine-consumable.

Graphs are described by a :class:`GraphSpec` rather than embedded as live
objects: a spec names a built-in dataset, an edge-list file, an inline
edge list, or a synthetic-generator configuration, and is materialised on
the solving side.  Inline edge labels must be JSON-representable (ints or
strings) for the JSON round-trip to be lossless.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field, fields
from typing import Dict, Optional, Tuple

from repro.exceptions import InvalidParameterError
from repro.graph.bipartite import BipartiteGraph, Vertex
from repro.mbb.dense import KERNEL_BITS
from repro.mbb.result import Biclique, MBBResult, SearchStats

#: ``GraphSpec.kind`` values.
SOURCE_DATASET = "dataset"
SOURCE_PATH = "path"
SOURCE_EDGES = "edges"
SOURCE_RANDOM = "random"
SOURCE_POWER_LAW = "power_law"

_SOURCE_KINDS = (
    SOURCE_DATASET,
    SOURCE_PATH,
    SOURCE_EDGES,
    SOURCE_RANDOM,
    SOURCE_POWER_LAW,
)

#: ``SolveReport.status`` values.  ``ok`` — the solve ran to a result
#: (possibly a budget-limited, non-optimal one).  ``error`` — the solve
#: failed; the report carries a :class:`SolveError` instead of a
#: biclique.  ``aborted`` — the engine gave up on the request from the
#: outside (watchdog deadline) rather than the solve failing inside.
STATUS_OK = "ok"
STATUS_ERROR = "error"
STATUS_ABORTED = "aborted"

_STATUSES = (STATUS_OK, STATUS_ERROR, STATUS_ABORTED)

#: ``SolveError.kind`` taxonomy.  The engine's retry policy keys on
#: these, so they are part of the wire contract, not free-form text.
ERROR_KIND_INVALID_PARAMETER = "invalid_parameter"
ERROR_KIND_INVALID_REQUEST = "invalid_request"
ERROR_KIND_INJECTED_FAULT = "injected_fault"
ERROR_KIND_WORKER_CRASH = "worker_crash"
ERROR_KIND_TIMEOUT = "timeout"
ERROR_KIND_RESOURCE = "resource"
ERROR_KIND_INTERNAL = "internal"

ERROR_KINDS = (
    ERROR_KIND_INVALID_PARAMETER,
    ERROR_KIND_INVALID_REQUEST,
    ERROR_KIND_INJECTED_FAULT,
    ERROR_KIND_WORKER_CRASH,
    ERROR_KIND_TIMEOUT,
    ERROR_KIND_RESOURCE,
    ERROR_KIND_INTERNAL,
)


@dataclass(frozen=True)
class SolveError:
    """Structured failure attached to a non-``ok`` :class:`SolveReport`.

    ``kind`` is one of :data:`ERROR_KINDS` (machine-matchable — the
    retry policy and the CLI exit code dispatch on it), ``message`` is
    the human-readable cause, and ``attempts`` counts how many times the
    engine submitted the request before giving up (1 = failed on the
    first and only try).
    """

    kind: str
    message: str
    attempts: int = 1

    def to_dict(self) -> Dict[str, object]:
        """Plain-dict form (inverse of :meth:`from_dict`)."""
        return {
            "kind": self.kind,
            "message": self.message,
            "attempts": self.attempts,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "SolveError":
        """Inverse of :meth:`to_dict`."""
        known = {error_field.name for error_field in fields(cls)}
        unknown = set(payload) - known
        if unknown:
            raise InvalidParameterError(
                f"unknown error fields {sorted(unknown)}; expected {sorted(known)}"
            )
        return cls(**payload)  # type: ignore[arg-type]


@dataclass(frozen=True)
class GraphSpec:
    """A JSON-serialisable description of where a graph comes from."""

    kind: str
    #: ``dataset``: registry name of a built-in KONECT stand-in.
    name: Optional[str] = None
    #: ``path``: edge-list file (KONECT-style ``left right`` lines).
    path: Optional[str] = None
    #: ``edges``: inline edge list.
    edges: Optional[Tuple[Tuple[Vertex, Vertex], ...]] = None
    #: ``random`` / ``power_law``: generator parameters.
    n_left: Optional[int] = None
    n_right: Optional[int] = None
    density: Optional[float] = None
    avg_degree: Optional[float] = None
    seed: int = 0

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def dataset(cls, name: str) -> "GraphSpec":
        """A built-in dataset stand-in by name."""
        return cls(kind=SOURCE_DATASET, name=name)

    @classmethod
    def from_path(cls, path: str) -> "GraphSpec":
        """An edge-list file on disk."""
        return cls(kind=SOURCE_PATH, path=str(path))

    @classmethod
    def inline(cls, edges) -> "GraphSpec":
        """An inline edge list (labels must be JSON-representable)."""
        return cls(kind=SOURCE_EDGES, edges=tuple((u, v) for u, v in edges))

    @classmethod
    def random(
        cls, n_left: int, n_right: int, density: float, *, seed: int = 0
    ) -> "GraphSpec":
        """A uniform random bipartite graph."""
        return cls(
            kind=SOURCE_RANDOM,
            n_left=n_left,
            n_right=n_right,
            density=density,
            seed=seed,
        )

    @classmethod
    def power_law(
        cls, n_left: int, n_right: int, avg_degree: float, *, seed: int = 0
    ) -> "GraphSpec":
        """A power-law (Chung-Lu) sparse bipartite graph."""
        return cls(
            kind=SOURCE_POWER_LAW,
            n_left=n_left,
            n_right=n_right,
            avg_degree=avg_degree,
            seed=seed,
        )

    # ------------------------------------------------------------------
    # materialisation and (de)serialisation
    # ------------------------------------------------------------------
    def materialise(self) -> BipartiteGraph:
        """Build the described :class:`BipartiteGraph`."""
        if self.kind == SOURCE_DATASET:
            from repro.workloads.datasets import load_dataset

            if self.name is None:
                raise InvalidParameterError("dataset graph spec requires 'name'")
            return load_dataset(self.name)
        if self.kind == SOURCE_PATH:
            from repro.graph.io import read_edge_list

            if self.path is None:
                raise InvalidParameterError("path graph spec requires 'path'")
            return read_edge_list(self.path)
        if self.kind == SOURCE_EDGES:
            return BipartiteGraph(edges=self.edges or ())
        if self.kind == SOURCE_RANDOM:
            from repro.graph.generators import random_bipartite

            if self.n_left is None or self.n_right is None or self.density is None:
                raise InvalidParameterError(
                    "random graph spec requires n_left, n_right and density"
                )
            return random_bipartite(
                self.n_left, self.n_right, self.density, seed=self.seed
            )
        if self.kind == SOURCE_POWER_LAW:
            from repro.graph.generators import random_power_law_bipartite

            if self.n_left is None or self.n_right is None or self.avg_degree is None:
                raise InvalidParameterError(
                    "power_law graph spec requires n_left, n_right and avg_degree"
                )
            return random_power_law_bipartite(
                self.n_left, self.n_right, self.avg_degree, seed=self.seed
            )
        raise InvalidParameterError(
            f"unknown graph source kind {self.kind!r}; expected one of {_SOURCE_KINDS}"
        )

    def to_dict(self) -> Dict[str, object]:
        """Plain-dict form with ``None`` fields omitted."""
        payload: Dict[str, object] = {"kind": self.kind}
        for spec_field in fields(self):
            if spec_field.name == "kind":
                continue
            value = getattr(self, spec_field.name)
            if value is None:
                continue
            if spec_field.name == "edges":
                value = [[u, v] for u, v in value]
            payload[spec_field.name] = value
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "GraphSpec":
        """Inverse of :meth:`to_dict`."""
        known = {spec_field.name for spec_field in fields(cls)}
        unknown = set(payload) - known
        if unknown:
            raise InvalidParameterError(
                f"unknown graph spec fields {sorted(unknown)}; expected {sorted(known)}"
            )
        data = dict(payload)
        if "edges" in data and data["edges"] is not None:
            data["edges"] = tuple((u, v) for u, v in data["edges"])
        return cls(**data)  # type: ignore[arg-type]


@dataclass(frozen=True)
class SolveRequest:
    """One solve: a graph source plus backend, kernel, budgets and seed."""

    graph: GraphSpec
    backend: str = "auto"
    kernel: str = KERNEL_BITS
    node_budget: Optional[int] = None
    time_budget: Optional[float] = None
    #: Seed forwarded to randomised backends (local search, adp1..adp4).
    seed: int = 0
    #: Free-form caller label, echoed back in the report (batch bookkeeping).
    tag: Optional[str] = None
    #: Fan the sparse framework's verification stage (S3) over a process
    #: pool with a shared incumbent (``sparse``/``auto`` backends only;
    #: ``None`` = the backend's default, currently off).  Same result
    #: size as the serial stage, wall time scales with cores; see
    #: :mod:`repro.api.parallel`.
    parallel_s3: Optional[bool] = None

    def to_dict(self) -> Dict[str, object]:
        """Plain-dict form with ``None`` fields omitted."""
        payload: Dict[str, object] = {"graph": self.graph.to_dict()}
        for request_field in fields(self):
            if request_field.name == "graph":
                continue
            value = getattr(self, request_field.name)
            if value is not None:
                payload[request_field.name] = value
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "SolveRequest":
        """Inverse of :meth:`to_dict`."""
        if "graph" not in payload:
            raise InvalidParameterError("solve request requires a 'graph' spec")
        known = {request_field.name for request_field in fields(cls)}
        unknown = set(payload) - known
        if unknown:
            raise InvalidParameterError(
                f"unknown request fields {sorted(unknown)}; expected {sorted(known)}"
            )
        data = dict(payload)
        data["graph"] = GraphSpec.from_dict(dict(data["graph"]))  # type: ignore[arg-type]
        return cls(**data)  # type: ignore[arg-type]

    def to_json(self) -> str:
        """Serialise to a JSON string (lossless; see :meth:`from_json`)."""
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, payload: str) -> "SolveRequest":
        """Parse a request serialised with :meth:`to_json`."""
        return cls.from_dict(json.loads(payload))


@dataclass(frozen=True)
class SolveReport:
    """Outcome of one :class:`SolveRequest`, JSON round-trippable."""

    request: SolveRequest
    side_size: int
    #: The biclique's vertices, sorted by ``repr`` for determinism.
    left: Tuple[Vertex, ...]
    right: Tuple[Vertex, ...]
    optimal: bool
    terminated_at: Optional[str]
    elapsed_seconds: float
    #: Full :class:`~repro.mbb.result.SearchStats` counters (ints, plus
    #: the float ``order_seconds`` ordering-overhead stage stat).
    stats: Dict[str, float] = field(default_factory=dict)
    #: Backend that actually ran (``auto`` resolves to ``dense``/``sparse``).
    backend: str = "auto"
    kernel: str = KERNEL_BITS
    #: Shape of the solved graph (|L|, |R|, |E|) — provenance for batch
    #: consumers that never materialise the graph themselves.
    num_left: int = 0
    num_right: int = 0
    num_edges: int = 0
    #: Library version that produced the report (provenance).
    version: str = ""
    #: One of :data:`STATUS_OK` / :data:`STATUS_ERROR` /
    #: :data:`STATUS_ABORTED`; non-``ok`` reports carry :attr:`error`.
    status: str = STATUS_OK
    #: Structured failure cause for non-``ok`` reports, ``None`` otherwise.
    error: Optional[SolveError] = None

    @classmethod
    def from_result(
        cls,
        request: SolveRequest,
        result: MBBResult,
        *,
        backend: str,
        kernel: str,
        graph: Optional[BipartiteGraph] = None,
    ) -> "SolveReport":
        """Build a report from a solver's :class:`MBBResult`."""
        from repro import __version__

        biclique = result.biclique
        return cls(
            request=request,
            side_size=result.side_size,
            left=tuple(sorted(biclique.left, key=repr)),
            right=tuple(sorted(biclique.right, key=repr)),
            optimal=result.optimal,
            terminated_at=result.terminated_at,
            elapsed_seconds=result.elapsed_seconds,
            stats=asdict(result.stats),
            backend=backend,
            kernel=kernel,
            num_left=graph.num_left if graph is not None else 0,
            num_right=graph.num_right if graph is not None else 0,
            num_edges=graph.num_edges if graph is not None else 0,
            version=__version__,
        )

    @classmethod
    def from_error(
        cls,
        request: SolveRequest,
        error: SolveError,
        *,
        status: str = STATUS_ERROR,
        stats: Optional[Dict[str, float]] = None,
    ) -> "SolveReport":
        """Build a non-``ok`` report for a request that produced no result.

        The report keeps the request's backend/kernel as provenance (no
        resolution happened) and an empty biclique; ``stats`` lets the
        engine attach retry accounting (``worker_retries`` etc.) even to
        failed requests.
        """
        from repro import __version__

        if status not in (STATUS_ERROR, STATUS_ABORTED):
            raise InvalidParameterError(
                f"error reports must have status 'error' or 'aborted', got {status!r}"
            )
        return cls(
            request=request,
            side_size=0,
            left=(),
            right=(),
            optimal=False,
            terminated_at=None,
            elapsed_seconds=0.0,
            stats=dict(stats or {}),
            backend=request.backend,
            kernel=request.kernel,
            version=__version__,
            status=status,
            error=error,
        )

    @property
    def ok(self) -> bool:
        """``True`` when the solve produced a result (status ``ok``)."""
        return self.status == STATUS_OK

    @property
    def biclique(self) -> Biclique:
        """The reported biclique as a :class:`Biclique` object."""
        return Biclique.of(self.left, self.right)

    def to_result(self) -> MBBResult:
        """Reconstruct the :class:`MBBResult` the report was built from."""
        return MBBResult(
            biclique=self.biclique,
            optimal=self.optimal,
            terminated_at=self.terminated_at,
            stats=SearchStats(**self.stats),
            elapsed_seconds=self.elapsed_seconds,
        )

    def to_dict(self) -> Dict[str, object]:
        """Plain-dict form (request nested via :meth:`SolveRequest.to_dict`)."""
        return {
            "request": self.request.to_dict(),
            "side_size": self.side_size,
            "left": list(self.left),
            "right": list(self.right),
            "optimal": self.optimal,
            "terminated_at": self.terminated_at,
            "elapsed_seconds": self.elapsed_seconds,
            "stats": dict(self.stats),
            "backend": self.backend,
            "kernel": self.kernel,
            "num_left": self.num_left,
            "num_right": self.num_right,
            "num_edges": self.num_edges,
            "version": self.version,
            "status": self.status,
            "error": self.error.to_dict() if self.error is not None else None,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "SolveReport":
        """Inverse of :meth:`to_dict`."""
        if "request" not in payload:
            raise InvalidParameterError("solve report requires a 'request'")
        known = {report_field.name for report_field in fields(cls)}
        unknown = set(payload) - known
        if unknown:
            raise InvalidParameterError(
                f"unknown report fields {sorted(unknown)}; expected {sorted(known)}"
            )
        data = dict(payload)
        data["request"] = SolveRequest.from_dict(dict(data["request"]))  # type: ignore[arg-type]
        data["left"] = tuple(data.get("left", ()))  # type: ignore[arg-type]
        data["right"] = tuple(data.get("right", ()))  # type: ignore[arg-type]
        data["stats"] = dict(data.get("stats", {}))  # type: ignore[arg-type]
        status = data.get("status", STATUS_OK)
        if status not in _STATUSES:
            raise InvalidParameterError(
                f"unknown report status {status!r}; expected one of {_STATUSES}"
            )
        if data.get("error") is not None:
            data["error"] = SolveError.from_dict(dict(data["error"]))  # type: ignore[arg-type]
        return cls(**data)  # type: ignore[arg-type]

    def to_json(self) -> str:
        """Serialise to a JSON string (lossless; see :meth:`from_json`)."""
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, payload: str) -> "SolveReport":
        """Parse a report serialised with :meth:`to_json`."""
        return cls.from_dict(json.loads(payload))


def sweep_requests(
    datasets,
    backends,
    *,
    kernel: str = KERNEL_BITS,
    node_budget: Optional[int] = None,
    time_budget: Optional[float] = None,
    seed: int = 0,
) -> list:
    """Expand ``datasets x backends`` into a list of :class:`SolveRequest`.

    This is the generator behind ``repro-mbb sweep``: it turns "all the
    stand-ins with these backends" into the request array that
    ``repro-mbb batch`` (and :meth:`MBBEngine.solve_many
    <repro.api.engine.MBBEngine.solve_many>`) consume, so a fleet-style
    dataset sweep is one command instead of a hand-written JSON file.
    Every request is tagged ``"<dataset>:<backend>"`` so the reports
    identify their cell without consulting the request's graph spec.

    Dataset names are validated against the stand-in registry and backend
    names against the solver registry up front, so a typo fails before a
    single (potentially long) solve starts.  Budgets are only attached to
    requests whose backend supports them (``supports_budgets`` in the
    registry metadata): a sweep mixing exact solvers with budget-less
    heuristics like ``mvb`` must not have every heuristic cell rejected —
    and the whole batch with it — because of a budget meant for the
    solvers.
    """
    from repro.api.registry import available_backends, get_backend
    from repro.workloads.datasets import DATASETS

    dataset_names = list(datasets)
    backend_names = list(backends)
    unknown_datasets = sorted(set(dataset_names) - set(DATASETS))
    if unknown_datasets:
        raise InvalidParameterError(
            f"unknown datasets {unknown_datasets}; see 'repro-mbb datasets'"
        )
    unknown_backends = sorted(set(backend_names) - set(available_backends()))
    if unknown_backends:
        raise InvalidParameterError(
            f"unknown backends {unknown_backends}; see 'repro-mbb backends'"
        )
    if not dataset_names or not backend_names:
        raise InvalidParameterError(
            "sweep needs at least one dataset and one backend"
        )
    budgeted = {
        backend: get_backend(backend).info.supports_budgets
        for backend in backend_names
    }
    return [
        SolveRequest(
            graph=GraphSpec.dataset(dataset),
            backend=backend,
            kernel=kernel,
            node_budget=node_budget if budgeted[backend] else None,
            time_budget=time_budget if budgeted[backend] else None,
            seed=seed,
            tag=f"{dataset}:{backend}",
        )
        for dataset in dataset_names
        for backend in backend_names
    ]
