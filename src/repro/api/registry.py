"""Named solver backends: protocol, capability metadata and registry.

Every solver in the library — the paper's two exact algorithms, the basic
enumeration, the size-constrained reduction and all baselines — is
registered here under a stable name together with capability metadata
(exact vs heuristic, supported kernels, budget/seed support).  Callers
dispatch by name through :func:`get_backend` instead of hardcoding
if/elif chains, which is what lets the CLI, the benchmark harness and the
:class:`~repro.api.engine.MBBEngine` service facade share one dispatch
surface; a future server registers custom backends the same way.

A backend is any object satisfying the :class:`SolverBackend` protocol;
in practice almost every backend is a :class:`FunctionBackend` wrapping a
plain solver function.  Backend ``run`` implementations receive the
engine-owned :class:`~repro.mbb.context.SearchContext`, so budgets,
cancellation hooks and statistics flow through one mechanism no matter
which backend executes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Protocol, Tuple, runtime_checkable

from repro.exceptions import InvalidParameterError
from repro.graph.bipartite import BipartiteGraph
from repro.mbb.context import SearchContext
from repro.mbb.result import MBBResult


@dataclass(frozen=True)
class BackendInfo:
    """Capability metadata of a registered backend."""

    #: Registry name (also the CLI ``--backend`` value).
    name: str
    #: One-line human description shown by ``repro-mbb backends``.
    description: str = ""
    #: ``True`` when the backend proves optimality (given enough budget).
    exact: bool = True
    #: Branch-and-bound kernels the backend understands (empty when the
    #: backend has a single fixed implementation and ignores ``kernel``).
    kernels: Tuple[str, ...] = ()
    #: ``True`` when node/time budgets are enforced cooperatively.
    supports_budgets: bool = True
    #: ``True`` when the ``seed`` request field changes behaviour.
    supports_seed: bool = False
    #: ``True`` when ``run`` accepts a ``prepared=`` keyword carrying a
    #: :class:`~repro.graph.prepared.PreparedGraph` snapshot; the engine
    #: then threads its per-graph cache through the backend.
    supports_prepared: bool = False

    def to_dict(self) -> Dict[str, object]:
        """Plain-dict form used by the CLI's ``backends --json`` listing."""
        return {
            "name": self.name,
            "description": self.description,
            "exact": self.exact,
            "kernels": list(self.kernels),
            "supports_budgets": self.supports_budgets,
            "supports_seed": self.supports_seed,
            "supports_prepared": self.supports_prepared,
        }


@runtime_checkable
class SolverBackend(Protocol):
    """Protocol every registered backend satisfies."""

    info: BackendInfo

    def run(
        self,
        graph: BipartiteGraph,
        context: SearchContext,
        *,
        kernel: str,
        seed: int,
        **options: object,
    ) -> MBBResult:
        """Solve ``graph``, reporting through the caller-owned ``context``."""
        ...  # pragma: no cover - protocol body


@dataclass(frozen=True)
class FunctionBackend:
    """A :class:`SolverBackend` wrapping a plain solver function."""

    info: BackendInfo
    function: Callable[..., MBBResult] = field(repr=False)

    def run(
        self,
        graph: BipartiteGraph,
        context: SearchContext,
        *,
        kernel: str,
        seed: int,
        **options: object,
    ) -> MBBResult:
        return self.function(graph, context, kernel=kernel, seed=seed, **options)


_REGISTRY: Dict[str, SolverBackend] = {}


def _ensure_builtin_backends() -> None:
    # Imported lazily so `repro.api.registry` stays importable from the
    # backend module itself without a cycle.
    from repro.api import backends  # noqa: F401


def register_backend(backend: SolverBackend, *, replace: bool = False) -> SolverBackend:
    """Register a backend under ``backend.info.name``.

    Re-registering an existing name raises unless ``replace=True`` (so a
    typo cannot silently shadow a built-in solver).  Returns the backend,
    allowing use as a decorator-style one-liner.
    """
    name = backend.info.name
    if not name:
        raise InvalidParameterError("backend name must be non-empty")
    if not replace and name in _REGISTRY:
        raise InvalidParameterError(
            f"backend {name!r} is already registered (pass replace=True to override)"
        )
    _REGISTRY[name] = backend
    return backend


def unregister_backend(name: str) -> None:
    """Remove a backend (used by tests registering temporary backends)."""
    _REGISTRY.pop(name, None)


def get_backend(name: str) -> SolverBackend:
    """Look up a backend by name; raises for unknown names."""
    _ensure_builtin_backends()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise InvalidParameterError(
            f"unknown backend {name!r}; expected one of {available_backends()}"
        ) from None


def available_backends() -> Tuple[str, ...]:
    """Sorted names of every registered backend."""
    _ensure_builtin_backends()
    return tuple(sorted(_REGISTRY))


def backend_infos() -> List[BackendInfo]:
    """Capability metadata of every registered backend, sorted by name."""
    _ensure_builtin_backends()
    return [_REGISTRY[name].info for name in sorted(_REGISTRY)]
