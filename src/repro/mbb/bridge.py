"""Algorithm 6: ``bridgeMBB`` — from a sparse graph to small dense subgraphs.

The bridging stage takes the residual graph left over after the heuristic
stage, computes the requested total search order (bidegeneracy by default),
slices the graph into vertex-centred subgraphs along that order and prunes
each subgraph with progressively stronger tests:

1. **size test** — a subgraph with fewer than ``best_side + 1`` vertices on
   either side cannot contain an improving balanced biclique;
2. **degeneracy test** — neither can one whose degeneracy is at most the
   incumbent side size;
3. **local heuristic** — the core-number greedy is run on each survivor,
   which frequently lifts the incumbent to the global optimum before any
   exhaustive search happens (the ``heuLocal`` series of Figure 4).

The subgraphs that survive are handed to ``verifyMBB`` (Algorithm 8).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.graph.bipartite import BipartiteGraph
from repro.cores.core import core_numbers, degeneracy
from repro.cores.orders import ORDER_BIDEGENERACY, search_order
from repro.mbb.context import SearchContext
from repro.mbb.heuristics import core_heuristic
from repro.mbb.result import Biclique
from repro.mbb.vertex_centred import (
    VertexCentredSubgraph,
    iter_vertex_centred_subgraphs,
)


@dataclass
class BridgeOutcome:
    """Result of the bridging stage."""

    best: Biclique
    surviving: List[VertexCentredSubgraph] = field(default_factory=list)
    local_heuristic_best: Biclique = field(default_factory=Biclique.empty)

    @property
    def exhausted(self) -> bool:
        """True when every centred subgraph was pruned away."""
        return not self.surviving


def bridge_mbb(
    graph: BipartiteGraph,
    context: SearchContext,
    *,
    order: str = ORDER_BIDEGENERACY,
    use_core_pruning: bool = True,
    use_local_heuristic: bool = True,
) -> BridgeOutcome:
    """Run the bridging stage on the (already reduced) residual graph.

    Parameters
    ----------
    graph:
        The residual graph produced by the heuristic stage.
    context:
        Shared search context carrying the incumbent found so far.
    order:
        Total search order; one of ``degree``, ``degeneracy``,
        ``bidegeneracy`` (the ablations ``bd4``/``bd5`` use the first two).
    use_core_pruning:
        When ``False`` the degeneracy test is skipped (``bd2`` ablation).
    use_local_heuristic:
        When ``False`` the per-subgraph greedy is skipped.
    """
    outcome = BridgeOutcome(best=context.best)
    if graph.num_vertices == 0:
        return outcome

    total_order = search_order(graph, order)
    surviving: List[VertexCentredSubgraph] = []
    local_best = Biclique.empty()
    for sub in iter_vertex_centred_subgraphs(graph, total_order):
        context.stats.subgraphs_generated += 1
        subgraph = sub.graph
        target = context.best_side + 1
        if min(subgraph.num_left, subgraph.num_right) < target:
            context.stats.subgraphs_pruned += 1
            continue
        if use_core_pruning and degeneracy(subgraph) < target:
            context.stats.subgraphs_pruned += 1
            continue
        if use_local_heuristic:
            cores = core_numbers(subgraph) if use_core_pruning else None
            candidate = core_heuristic(subgraph, cores=cores)
            if candidate.side_size > local_best.side_size:
                local_best = candidate
            if context.offer_biclique(candidate):
                context.stats.local_heuristic_side = max(
                    context.stats.local_heuristic_side, context.best_side
                )
        surviving.append(sub)

    # The incumbent may have improved while scanning; re-filter the kept
    # subgraphs with the final bound so the verification stage sees as few
    # of them as possible.
    final_target = context.best_side + 1
    filtered: List[VertexCentredSubgraph] = []
    for sub in surviving:
        subgraph = sub.graph
        if min(subgraph.num_left, subgraph.num_right) < final_target:
            context.stats.subgraphs_pruned += 1
            continue
        if use_core_pruning and degeneracy(subgraph) < final_target:
            context.stats.subgraphs_pruned += 1
            continue
        filtered.append(sub)

    outcome.best = context.best
    outcome.surviving = filtered
    outcome.local_heuristic_best = local_best
    return outcome
