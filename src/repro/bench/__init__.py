"""Benchmark harness that regenerates every table and figure of the paper.

Each module exposes a ``run_*`` function returning plain row dictionaries
and a ``format_*`` helper that renders them as a text table, so the same
code backs the pytest-benchmark suites under ``benchmarks/``, the runnable
examples and EXPERIMENTS.md.

=================  ==============================================
module             paper artefact
=================  ==============================================
``table4``         Table 4 — dense synthetic graphs
``table5``         Table 5 — 30 sparse datasets (stand-ins)
``table6``         Table 6 — technique breakdown on tough datasets
``figure4``        Figure 4 — heuristic gap to the optimum
``figure5``        Figure 5 — search depth over δ̈ per order
``figure6``        Figure 6 — density of vertex-centred subgraphs
``kernels``        bitset vs set branch-and-bound kernel timing
=================  ==============================================
"""

from repro.bench.harness import format_table, rows_to_csv
from repro.bench import table4, table5, table6, figure4, figure5, figure6, kernels

__all__ = [
    "format_table",
    "rows_to_csv",
    "table4",
    "table5",
    "table6",
    "figure4",
    "figure5",
    "figure6",
    "kernels",
]
