"""The non-trivial baselines ``adp1`` .. ``adp4`` (paper Table 3).

Each baseline plugs an existing heuristic into step 1 of the paper's
framework and an adapted maximal-biclique-enumeration engine into the
exhaustive stage, with the core-number based upper bound in between:

=========  ==========  =====================  ======
baseline   heuristic   exhaustive engine      bound
=========  ==========  =====================  ======
``adp1``   POLS        FMBE (adapted)         core
``adp2``   POLS        iMBEA (adapted)        core
``adp3``   SBMNAS      FMBE (adapted)         core
``adp4``   SBMNAS      iMBEA (adapted)        core
=========  ==========  =====================  ======

All four are exact: the heuristic only provides the initial incumbent and
the Lemma 4 reduction; the enumeration engine then verifies optimality.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.exceptions import InvalidParameterError
from repro.graph.bipartite import BipartiteGraph
from repro.baselines.local_search import pols, sbmnas
from repro.baselines.mbe import adapted_fmbe, adapted_imbea
from repro.mbb.context import SearchContext
from repro.mbb.reductions import core_reduce
from repro.mbb.result import Biclique, MBBResult

#: heuristic name -> callable returning a balanced biclique.
_HEURISTICS: Dict[str, Callable[..., Biclique]] = {
    "pols": pols,
    "sbmnas": sbmnas,
}

#: engine name -> callable running the exhaustive stage.
_ENGINES: Dict[str, Callable[..., MBBResult]] = {
    "fmbe": adapted_fmbe,
    "imbea": adapted_imbea,
}

#: The four baselines of the paper, by name.
ADAPTED_BASELINES: Dict[str, Dict[str, str]] = {
    "adp1": {"heuristic": "pols", "engine": "fmbe"},
    "adp2": {"heuristic": "pols", "engine": "imbea"},
    "adp3": {"heuristic": "sbmnas", "engine": "fmbe"},
    "adp4": {"heuristic": "sbmnas", "engine": "imbea"},
}


def run_adapted_baseline(
    graph: BipartiteGraph,
    name: str,
    *,
    heuristic_iterations: int = 2000,
    seed: int = 0,
    context: Optional[SearchContext] = None,
    node_budget: Optional[int] = None,
    time_budget: Optional[float] = None,
) -> MBBResult:
    """Run one of ``adp1`` .. ``adp4`` on ``graph``.

    Parameters
    ----------
    name:
        Baseline identifier (see :data:`ADAPTED_BASELINES`).
    heuristic_iterations, seed:
        Forwarded to the local-search heuristic.
    context:
        Optional pre-seeded :class:`SearchContext` (shared incumbent,
        budgets and cancellation hook); a fresh one is created by default.
    node_budget, time_budget:
        Budgets for the exhaustive stage; when exhausted the result has
        ``optimal=False`` (the analogue of the paper's timeout dashes).
        Ignored when an explicit ``context`` already carries budgets.
    """
    if name not in ADAPTED_BASELINES:
        raise InvalidParameterError(
            f"unknown adapted baseline {name!r}; expected one of "
            f"{sorted(ADAPTED_BASELINES)}"
        )
    spec = ADAPTED_BASELINES[name]
    heuristic = _HEURISTICS[spec["heuristic"]]
    engine = _ENGINES[spec["engine"]]

    if context is None:
        context = SearchContext(node_budget=node_budget, time_budget=time_budget)
    else:
        # Explicit budget arguments still apply to a provided context when
        # it does not already carry its own.
        if context.node_budget is None and node_budget is not None:
            context.node_budget = node_budget
        if context.time_budget is None and time_budget is not None:
            context.time_budget = time_budget
    incumbent = heuristic(graph, iterations=heuristic_iterations, seed=seed)
    context.offer_biclique(incumbent)
    context.stats.heuristic_side = context.best_side

    # Core-number based reduction with the heuristic incumbent (Lemma 4).
    reduced = core_reduce(graph, context.best_side)
    if reduced.num_vertices == 0:
        return MBBResult(
            biclique=context.best,
            optimal=True,
            stats=context.stats,
            elapsed_seconds=context.elapsed,
        )
    return engine(reduced, context=context)
