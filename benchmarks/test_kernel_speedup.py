"""Benchmark: bitset vs adjacency-set branch-and-bound kernel.

Times ``dense_mbb`` with both kernels on Table 4-style dense instances and
asserts that (a) the kernels agree on every optimum and (b) the bitset
kernel is decisively faster.  The committed baseline lives in
``BENCH_kernels.json`` at the repository root (regenerate with
``repro-mbb bench kernels`` or ``python -m repro.bench.kernels`` semantics
via :func:`repro.bench.kernels.write_benchmark_json`).
"""

from __future__ import annotations

import pytest

pytestmark = pytest.mark.bench

from repro.bench.kernels import (
    DEFAULT_KERNEL_CASES,
    format_kernel_comparison,
    run_kernel_comparison,
    speedups,
)


class TestKernelSpeedup:
    @pytest.fixture(scope="class")
    def rows(self):
        return run_kernel_comparison(DEFAULT_KERNEL_CASES, instances=1)

    def test_kernels_agree_on_every_case(self, rows):
        by_case = {}
        for row in rows:
            by_case.setdefault((row["size"], row["density"]), set()).add(
                row["mbb_side"]
            )
        for case, sides in by_case.items():
            assert len(sides) == 1, f"kernels disagree on {case}: {sides}"

    def test_bitset_kernel_is_faster(self, rows):
        ratios = speedups(rows)
        assert ratios, "no complete kernel pairs measured"
        # Only judge cases whose set-kernel time is large enough to be
        # meaningfully measurable; on sub-millisecond instances the fixed
        # IndexedBitGraph construction cost dominates either kernel.
        measurable = [r for r in ratios if r["sets_seconds"] >= 0.05]
        assert measurable, f"no measurable cases in {ratios}"
        # The committed BENCH_kernels.json baseline shows >= 3x on the
        # larger cases; assert a conservative 1.5x here so the benchmark
        # stays robust on slow or contended CI machines.
        slowest = min(r["speedup"] for r in measurable)
        assert slowest >= 1.5, f"bitset kernel speedup degraded: {measurable}"

    def test_report(self, rows):
        print()
        print(format_kernel_comparison(rows))
