"""Shared configuration for the benchmark suites.

The benchmarks are intentionally scaled down (see DESIGN.md): the goal is
to reproduce the *shape* of every table and figure — who wins, by roughly
what factor, where algorithms start timing out — with run times measured in
seconds rather than the paper's hours.  Each suite prints the regenerated
table/figure at the end of its session so the output can be copied into
EXPERIMENTS.md.
"""

from __future__ import annotations

import pytest


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "table: marks a benchmark that regenerates a paper table"
    )
    config.addinivalue_line(
        "markers", "figure: marks a benchmark that regenerates a paper figure"
    )


@pytest.fixture(scope="session")
def bench_time_budget() -> float:
    """Per-solver-run time budget (the analogue of the paper's 4h timeout)."""
    return 5.0
