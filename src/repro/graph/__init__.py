"""Bipartite graph substrate used by every algorithm in the library.

The public surface of this package is:

* :class:`~repro.graph.bipartite.BipartiteGraph` — mutable adjacency-set
  bipartite graph with independent left/right label spaces.
* :func:`~repro.graph.complement.bipartite_complement` — the bipartite
  complement used by the polynomial-case solver.
* :mod:`~repro.graph.generators` — random and structured graph generators.
* :mod:`~repro.graph.io` — edge-list and biadjacency-matrix I/O.
* :mod:`~repro.graph.validation` — structural validators shared by tests.
"""

from repro.graph.bipartite import LEFT, RIGHT, BipartiteGraph
from repro.graph.complement import bipartite_complement, complement_density
from repro.graph import generators, io, validation

__all__ = [
    "LEFT",
    "RIGHT",
    "BipartiteGraph",
    "bipartite_complement",
    "complement_density",
    "generators",
    "io",
    "validation",
]
