"""Figure 6 — average density of vertex-centred subgraphs per search order.

For every tough dataset, the vertex-centred subgraph family is generated
with each of the three total search orders and the average edge density of
the non-empty subgraphs is reported.

Expected shape: the bidegeneracy order produces markedly denser (and
smaller) subgraphs than the degree and degeneracy orders — which is why the
dense-graph solver is the right engine for the verification stage.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.analysis.metrics import average_subgraph_density
from repro.bench.harness import format_table
from repro.cores.orders import ORDER_BIDEGENERACY, ORDER_DEGENERACY, ORDER_DEGREE
from repro.workloads.datasets import DATASETS, TOUGH_DATASETS


def run_figure6(
    dataset_names: Sequence[str] = TOUGH_DATASETS,
) -> List[Dict[str, object]]:
    """Compute the average subgraph densities for every requested dataset."""
    rows: List[Dict[str, object]] = []
    for index, name in enumerate(dataset_names, start=1):
        graph = DATASETS[name].generate()
        densities = average_subgraph_density(graph)
        rows.append(
            {
                "label": f"D{index}",
                "dataset": name,
                "maxDeg": densities[ORDER_DEGREE],
                "degeneracy": densities[ORDER_DEGENERACY],
                "bidegeneracy": densities[ORDER_BIDEGENERACY],
            }
        )
    return rows


def format_figure6(rows: Sequence[Dict[str, object]]) -> str:
    """Render the Figure 6 series as a table."""
    return format_table(
        rows, ["label", "dataset", "maxDeg", "degeneracy", "bidegeneracy"]
    )
