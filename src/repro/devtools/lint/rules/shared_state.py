"""RPL005 — shared-state safety for published graph snapshots.

The parallel-S3 plan (ROADMAP) shares one :class:`PreparedGraph` /
:class:`CSRBipartite` bundle across pool workers and threads: the engine
cache hands the *same* object to every solve of the same graph, and the
whole design is sound only because those objects are immutable once
published.  That contract is documented in
``src/repro/graph/prepared.py`` / ``src/repro/graph/csr.py`` but was,
until this rule, enforced by review only.

The rule tracks every expression the project model can prove (or the
repository's naming convention claims) to be a prepared/CSR object —

* parameters and variables annotated ``PreparedGraph`` /
  ``CSRBipartite`` (``Optional[...]`` unwrapped, resolved through
  imports and re-exports),
* variables assigned from ``PreparedGraph(...)``,
  ``PreparedGraph.prepare(...)``, ``CSRBipartite.from_bipartite(...)``
  or any other ``TrackedClass.factory(...)`` call,
* the conventional names ``prepared`` and ``csr`` and attribute chains
  ending in ``.prepared`` / ``.csr``

— and flags post-construction mutation through them: attribute
assignment/``del``, element stores into the flat arrays (``keys``,
``indptr``, ``indices``, ``labels`` and the flat-buffer order-view
arrays), and in-place mutator calls (``append``/``sort``/``update`` …)
on object or array alike.

The *defining* modules are exempt: constructors, factories, the
flat-buffer backends and the internal memoisation caches
(``_orders``/``_views``/``_children``) live there by design, and
confining them is exactly what makes the contract checkable everywhere
else.

One check holds even inside the defining modules: element stores
through a ``SharedMemory.buf`` view are allowed only in the
``to_shm``/``from_shm`` protocol functions — an attached segment is
mapped into every pool worker at once, so a stray write corrupts the
graph under every concurrent solve.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.devtools.lint.base import ProjectRule, register_rule
from repro.devtools.lint.findings import Finding
from repro.devtools.lint.project import (
    ModuleInfo,
    ProjectContext,
    annotation_name,
)

#: ``(defining module, class name)`` pairs under the immutability contract.
TRACKED_CLASSES = (
    ("repro.graph.prepared", "PreparedGraph"),
    ("repro.graph.csr", "CSRBipartite"),
)

#: Files allowed to mutate: the classes' own constructors/factories,
#: memoisation caches and the flat-buffer backends live here.
DEFINING_MODULES = frozenset(
    {
        "src/repro/graph/prepared.py",
        "src/repro/graph/csr.py",
        "src/repro/graph/buffers.py",
    }
)

#: Roots where the contract is enforced (tests may exercise internals).
SCOPE_PREFIXES = ("src/", "benchmarks/", "examples/")

#: Conventional receiver names treated as tracked without proof.
CONVENTION_NAMES = frozenset({"prepared", "csr"})

#: Flat-array attributes shared with pool workers: the CSR adjacency,
#: the label table, and the flat-buffer order-view arrays that
#: ``OrderView`` publishes (typed buffers may be shared-memory views, so
#: a store through them corrupts *every* attached process at once).
ARRAY_ATTRS = frozenset(
    {
        "keys",
        "indptr",
        "indices",
        "labels",
        "row_ptr",
        "flat_positions",
        "flat_labels",
        "position_rows",
        "order_ids",
        "positions",
    }
)

#: Functions allowed to write through a ``SharedMemory.buf`` view: the
#: segment producer and the attach-side rebuild.
SHM_WRITER_FUNCTIONS = frozenset({"to_shm", "from_shm"})

#: In-place mutator methods on lists/dicts/sets the flat arrays may be.
MUTATOR_METHODS = frozenset(
    {
        "append",
        "extend",
        "insert",
        "pop",
        "remove",
        "clear",
        "sort",
        "reverse",
        "update",
        "setdefault",
        "popitem",
        "add",
        "discard",
    }
)


def _receiver_text(node: ast.AST) -> str:
    """Stable dotted rendering of a receiver chain for messages."""
    parts: List[str] = []
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        if isinstance(node, ast.Attribute):
            parts.append(node.attr)
        else:
            parts.append("[...]")
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    else:
        parts.append("<expr>")
    return ".".join(reversed(parts)).replace(".[...]", "[...]")


@register_rule
class SharedStateRule(ProjectRule):
    code = "RPL005"
    name = "shared-state"
    description = (
        "no attribute/element mutation of PreparedGraph, CSRBipartite or "
        "their flat arrays outside their defining modules; shared-memory "
        "segment writes only inside to_shm/from_shm"
    )
    rationale = (
        "The engine cache publishes one PreparedGraph/CSRBipartite bundle to "
        "every solve of the same graph, and the planned intra-solve parallel "
        "S3 shares it across pool workers with no locking. That is only "
        "sound because the objects are immutable once constructed; a single "
        "post-publication mutation is a data race that surfaces as "
        "non-deterministic incumbents. This rule turns the written contract "
        "in graph/prepared.py into a machine-checked fact."
    )
    example = (
        "# bad: mutates a published snapshot's flat array\n"
        "def tweak(prepared: PreparedGraph) -> None:\n"
        "    prepared.csr.labels[0] = relabel(prepared.csr.labels[0])\n"
        "\n"
        "# good: derive a new residual snapshot instead\n"
        "def tweak(prepared: PreparedGraph) -> PreparedGraph:\n"
        "    return prepared.for_subgraph(relabelled_members)"
    )

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        for module_name in sorted(project.modules):
            info = project.modules[module_name]
            if not info.relpath.startswith(SCOPE_PREFIXES):
                continue
            # The segment-write protocol is enforced everywhere — the
            # defining modules host ``to_shm``/``from_shm`` but get no
            # blanket licence to scribble on attached segments.
            yield from self._check_shm_writes(info)
            if info.relpath in DEFINING_MODULES:
                continue
            tracked = self._tracked_names(project, info)
            yield from self._check_module(info, tracked)

    # ------------------------------------------------------------------
    # shared-memory segment writes
    # ------------------------------------------------------------------
    def _check_shm_writes(self, info: ModuleInfo) -> Iterator[Finding]:
        """Flag stores through a ``SharedMemory.buf`` view.

        Attached segments are mapped into every pool worker at once, so
        the only sanctioned writers are the export/attach protocol
        functions (:data:`SHM_WRITER_FUNCTIONS`); a store anywhere else
        silently corrupts the graph under every concurrently attached
        solve.  Both ``<segment>.buf[...]`` receivers and the
        conventional ``buf`` local a protocol function binds are
        recognised.
        """

        def is_buf(node: ast.AST) -> bool:
            return (isinstance(node, ast.Attribute) and node.attr == "buf") or (
                isinstance(node, ast.Name) and node.id == "buf"
            )

        def store_targets(node: ast.AST) -> List[ast.AST]:
            if isinstance(node, ast.Assign):
                return list(node.targets)
            if isinstance(node, ast.AugAssign):
                return [node.target]
            if isinstance(node, ast.AnnAssign) and node.value is not None:
                return [node.target]
            if isinstance(node, ast.Delete):
                return list(node.targets)
            return []

        findings: List[Finding] = []

        def visit(node: ast.AST, allowed: bool) -> None:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                allowed = allowed or node.name in SHM_WRITER_FUNCTIONS
            if not allowed:
                for target in store_targets(node):
                    for sub in ast.walk(target):
                        if isinstance(sub, ast.Subscript) and is_buf(sub.value):
                            findings.append(
                                self.project_finding(
                                    info.relpath,
                                    sub,
                                    f"store through "
                                    f"{_receiver_text(sub.value)}[...] writes a "
                                    f"shared-memory segment outside "
                                    f"to_shm/from_shm; segment bytes are owned "
                                    f"by the export/attach protocol (attached "
                                    f"workers map them zero-copy)",
                                )
                            )
            for child in ast.iter_child_nodes(node):
                visit(child, allowed)

        visit(info.ctx.tree, False)
        yield from findings

    # ------------------------------------------------------------------
    # receiver tracking
    # ------------------------------------------------------------------
    def _tracked_names(self, project: ProjectContext, info: ModuleInfo) -> Set[str]:
        """Names provably (or by convention) bound to tracked objects."""
        tracked: Set[str] = set(CONVENTION_NAMES)
        tracked_classes = set(TRACKED_CLASSES)

        def annotation_is_tracked(annotation: Optional[ast.AST]) -> bool:
            named = annotation_name(annotation)
            if named is None:
                return False
            head = named.split(".")[0]
            resolved = project.resolve_class(info.name, head)
            if resolved is None and "." in named:
                module_binding = project.resolve(info.name, head)
                if module_binding is not None and module_binding[0] == "module":
                    resolved = project.resolve_class(
                        module_binding[1], named.split(".", 1)[1]
                    )
            if resolved is None:
                # Unresolvable annotations still count when they *name*
                # a tracked class — string annotations under
                # ``TYPE_CHECKING`` guards must not escape the contract.
                return named.split(".")[-1] in {
                    cls for _module, cls in tracked_classes
                }
            return resolved in tracked_classes

        for node in ast.walk(info.ctx.tree):
            if isinstance(node, ast.arg):
                if annotation_is_tracked(node.annotation):
                    tracked.add(node.arg)
            elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
                if annotation_is_tracked(node.annotation):
                    tracked.add(node.target.id)
            elif (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and isinstance(node.value, ast.Call)
            ):
                func = node.value.func
                constructed: Optional[Tuple[str, str]] = None
                if isinstance(func, ast.Name):
                    constructed = project.resolve_class(info.name, func.id)
                elif isinstance(func, ast.Attribute) and isinstance(
                    func.value, ast.Name
                ):
                    constructed = project.resolve_class(info.name, func.value.id)
                if constructed in tracked_classes:
                    tracked.add(node.targets[0].id)
        return tracked

    def _is_tracked(self, node: ast.AST, tracked: Set[str]) -> bool:
        """True when ``node`` denotes a tracked prepared/CSR object."""
        if isinstance(node, ast.Name):
            return node.id in tracked
        if isinstance(node, ast.Attribute):
            return node.attr in CONVENTION_NAMES
        return False

    def _is_tracked_array(self, node: ast.AST, tracked: Set[str]) -> bool:
        """True when ``node`` denotes a tracked object's flat array."""
        return (
            isinstance(node, ast.Attribute)
            and node.attr in ARRAY_ATTRS
            and self._is_tracked(node.value, tracked)
        )

    # ------------------------------------------------------------------
    # mutation detection
    # ------------------------------------------------------------------
    def _check_module(
        self, info: ModuleInfo, tracked: Set[str]
    ) -> Iterator[Finding]:
        findings: List[Finding] = []

        def flag(node: ast.AST, message: str) -> None:
            findings.append(self.project_finding(info.relpath, node, message))

        def check_store_target(target: ast.AST) -> None:
            if isinstance(target, (ast.Tuple, ast.List)):
                for element in target.elts:
                    check_store_target(element)
                return
            if isinstance(target, ast.Attribute) and self._is_tracked(
                target.value, tracked
            ):
                flag(
                    target,
                    f"post-construction attribute assignment "
                    f"{_receiver_text(target.value)}.{target.attr} on shared "
                    f"prepared/CSR state; these objects are immutable once "
                    f"published (pool workers share them)",
                )
            elif isinstance(target, ast.Subscript):
                if self._is_tracked_array(target.value, tracked) or self._is_tracked(
                    target.value, tracked
                ):
                    flag(
                        target,
                        f"element store into {_receiver_text(target.value)}[...] "
                        f"mutates shared prepared/CSR state after construction; "
                        f"derive a new snapshot (e.g. for_subgraph) instead",
                    )

        for node in ast.walk(info.ctx.tree):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    check_store_target(target)
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                if isinstance(node, ast.AnnAssign) and node.value is None:
                    continue
                check_store_target(node.target)
            elif isinstance(node, ast.Delete):
                for target in node.targets:
                    check_store_target(target)
            elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                receiver = node.func.value
                if node.func.attr in MUTATOR_METHODS and (
                    self._is_tracked_array(receiver, tracked)
                    or self._is_tracked(receiver, tracked)
                ):
                    flag(
                        node,
                        f"in-place mutator "
                        f"{_receiver_text(receiver)}.{node.func.attr}() on shared "
                        f"prepared/CSR state; these objects are immutable once "
                        f"published (pool workers share them)",
                    )
        yield from findings
