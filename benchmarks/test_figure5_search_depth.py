"""Benchmark regenerating Figure 5: search depth over δ̈ per search order.

For tough dataset stand-ins, run the sparse framework once per total search
order (maxDeg, degeneracy, bidegeneracy) and report the average depth of
the exhaustive search normalised by the bidegeneracy.

Expected shape (matching the paper): the ratio is far below 1 for the
bidegeneracy order and no larger than for the other orders, demonstrating
that the reduction and branching techniques keep the exhaustive search
shallow.
"""

from __future__ import annotations

import pytest

pytestmark = pytest.mark.bench

from repro.analysis.metrics import search_depth_ratio
from repro.bench.figure5 import format_figure5, run_figure5
from repro.cores.orders import ORDER_BIDEGENERACY, ORDER_DEGREE
from repro.workloads.datasets import load_dataset

FIGURE_DATASETS = ("jester", "github", "stackexchange-stackoverflow", "edit-dewiki")


@pytest.mark.figure
@pytest.mark.parametrize("dataset", ("jester", "github"))
def test_search_depth_measurement(benchmark, dataset):
    """Time the depth measurement (three framework runs) on one dataset."""
    graph = load_dataset(dataset)
    ratios = benchmark(lambda: search_depth_ratio(graph, time_budget=30.0))
    assert set(ratios) >= {ORDER_DEGREE, ORDER_BIDEGENERACY}
    assert all(value >= 0.0 for value in ratios.values())


@pytest.mark.figure
def test_report_figure5(benchmark, capsys):
    """Regenerate and print the Figure 5 series."""
    rows = benchmark.pedantic(
        lambda: run_figure5(FIGURE_DATASETS, time_budget=15.0), rounds=1, iterations=1
    )
    # The bidegeneracy-order ratio stays well below the bidegeneracy itself
    # (the paper reports ratios below ~1 on every dataset).
    assert all(row["bi-degeneracy"] <= 1.5 for row in rows)
    with capsys.disabled():
        print("\n=== Figure 5 (stand-ins): average search depth over bidegeneracy ===")
        print(format_figure5(rows))
