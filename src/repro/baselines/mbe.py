"""Adapted maximal biclique enumeration engines (iMBEA- and FMBE-style).

The paper builds several non-trivial baselines by taking state-of-the-art
maximal biclique enumeration (MBE) algorithms and adapting them to the MBB
problem: maximality and duplication checks are dropped and replaced by the
best-balanced-biclique-so-far bound, which terminates unpromising branches.

Two engines are provided:

* :func:`adapted_imbea` follows the iMBEA scheme: enumerate by extending
  the right side one vertex at a time (in a fixed order), keeping the left
  side as the closed common neighbourhood, with candidate reordering by
  common-neighbourhood size.
* :func:`adapted_fmbe` follows the FMBE improvement: before enumerating the
  bicliques that contain a vertex, the search scope is restricted to that
  vertex's 2-hop neighbourhood, and processed vertices are excluded from
  later scopes.

Both are exact for the MBB problem (they explore every biclique not
excluded by the bound) and both accept node/time budgets like the other
solvers.
"""

from __future__ import annotations

from typing import List, Optional, Set

from repro._util import ensure_recursion_limit, recursion_headroom_for
from repro.graph.bipartite import LEFT, RIGHT, BipartiteGraph, Vertex
from repro.cores.core import core_numbers
from repro.mbb.bounds import is_bounded
from repro.mbb.context import SearchAborted, SearchContext
from repro.mbb.result import MBBResult


def _enumerate_right(
    graph: BipartiteGraph,
    context: SearchContext,
    a: Set[Vertex],
    b: Set[Vertex],
    candidates: List[Vertex],
    depth: int,
    upper_bounds: Optional[dict] = None,
) -> None:
    """One-sided enumeration: extend ``B`` along ``candidates``, close ``A``.

    The invariant is that ``a`` is exactly the set of left vertices adjacent
    to every vertex of ``b``, so ``(a, b)`` is always a biclique and is
    offered as an incumbent at every node.
    """
    context.enter_node(depth)
    if b:
        context.offer(a, b)
    # Upper bound: the left side can only shrink, the right side can gain at
    # most the remaining candidates.
    if is_bounded(context, len(a), len(b), 0, len(candidates)):
        context.stats.bound_prunes += 1
        context.record_leaf(depth)
        return
    if not candidates or not a:
        context.record_leaf(depth)
        return

    # iMBEA-style candidate ordering: try the vertex retaining the largest
    # common neighbourhood first, so good incumbents appear early.
    ordered = sorted(
        candidates,
        key=lambda v: (-len(graph.neighbors_right(v) & a), repr(v)),
    )
    for index, v in enumerate(ordered):
        if upper_bounds is not None and 2 * upper_bounds.get((RIGHT, v), 0) <= context.best_total:
            continue
        new_a = a & graph.neighbors_right(v)
        if len(new_a) <= context.best_side:
            # The left side of any biclique below this child is a subset of
            # ``new_a``, so it cannot beat the incumbent.
            continue
        remaining = ordered[index + 1 :]
        _enumerate_right(
            graph, context, new_a, b | {v}, remaining, depth + 1, upper_bounds
        )


def adapted_imbea(
    graph: BipartiteGraph,
    *,
    context: Optional[SearchContext] = None,
    node_budget: Optional[int] = None,
    time_budget: Optional[float] = None,
    use_core_bound: bool = True,
) -> MBBResult:
    """iMBEA-style enumeration adapted to the MBB problem.

    ``use_core_bound`` additionally prunes right-side candidates by their
    core number (the "core based upper bound" used by the paper's ``adp``
    baselines): a vertex with core number at most the incumbent side size
    cannot be part of an improving balanced biclique.
    """
    if context is None:
        context = SearchContext(node_budget=node_budget, time_budget=time_budget)
    ensure_recursion_limit(recursion_headroom_for(graph.num_vertices))
    upper_bounds = None
    if use_core_bound:
        upper_bounds = core_numbers(graph)
    optimal = True
    try:
        _enumerate_right(
            graph,
            context,
            graph.left,
            set(),
            sorted(graph.right, key=lambda v: (-graph.degree_right(v), repr(v))),
            0,
            upper_bounds,
        )
    except SearchAborted:
        optimal = False
    return MBBResult(
        biclique=context.best,
        optimal=optimal,
        stats=context.stats,
        elapsed_seconds=context.elapsed,
    )


def adapted_fmbe(
    graph: BipartiteGraph,
    *,
    context: Optional[SearchContext] = None,
    node_budget: Optional[int] = None,
    time_budget: Optional[float] = None,
    use_core_bound: bool = True,
) -> MBBResult:
    """FMBE-style enumeration adapted to the MBB problem.

    The outer loop processes left vertices in non-increasing degree order.
    For each vertex ``u`` the search scope is reduced to ``u``'s 2-hop
    neighbourhood restricted to unprocessed vertices, and every biclique
    containing ``u`` inside that scope is enumerated with the same
    one-sided scheme as :func:`adapted_imbea`.
    """
    if context is None:
        context = SearchContext(node_budget=node_budget, time_budget=time_budget)
    ensure_recursion_limit(recursion_headroom_for(graph.num_vertices))
    upper_bounds = core_numbers(graph) if use_core_bound else None
    optimal = True
    processed: Set[Vertex] = set()
    order = sorted(
        graph.left, key=lambda u: (-graph.degree_left(u), repr(u))
    )
    try:
        for u in order:
            if upper_bounds is not None and 2 * upper_bounds.get((LEFT, u), 0) <= context.best_total:
                processed.add(u)
                continue
            right_scope = set(graph.neighbors_left(u))
            left_scope: Set[Vertex] = set()
            for v in right_scope:
                left_scope.update(graph.neighbors_right(v))
            left_scope -= processed
            left_scope.discard(u)
            if min(len(left_scope) + 1, len(right_scope)) <= context.best_side:
                processed.add(u)
                continue
            scope = graph.induced_subgraph(left_scope | {u}, right_scope)
            _enumerate_right(
                scope,
                context,
                scope.left,
                set(),
                sorted(
                    scope.right,
                    key=lambda v: (-scope.degree_right(v), repr(v)),
                ),
                0,
                upper_bounds,
            )
            processed.add(u)
    except SearchAborted:
        optimal = False
    return MBBResult(
        biclique=context.best,
        optimal=optimal,
        stats=context.stats,
        elapsed_seconds=context.elapsed,
    )
