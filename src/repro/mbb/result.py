"""Result types shared by every MBB solver in the library.

A :class:`Biclique` is an immutable pair of vertex sets; an
:class:`MBBResult` wraps the best biclique found together with search
statistics and bookkeeping (optimality flag, terminating step of the sparse
framework) that the benchmark harness reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Iterable, Optional

from repro.graph.bipartite import BipartiteGraph, Vertex
from repro.graph.validation import is_biclique


@dataclass(frozen=True)
class Biclique:
    """An immutable biclique ``(A, B)`` with ``A ⊆ L`` and ``B ⊆ R``."""

    left: FrozenSet[Vertex]
    right: FrozenSet[Vertex]

    @classmethod
    def empty(cls) -> "Biclique":
        """The empty biclique (side size zero)."""
        return cls(frozenset(), frozenset())

    @classmethod
    def of(cls, left: Iterable[Vertex], right: Iterable[Vertex]) -> "Biclique":
        """Build a biclique from arbitrary iterables of vertex labels."""
        return cls(frozenset(left), frozenset(right))

    @property
    def side_size(self) -> int:
        """Size of the smaller side — the quantity the MBB problem maximises."""
        return min(len(self.left), len(self.right))

    @property
    def total_size(self) -> int:
        """``|A| + |B|``."""
        return len(self.left) + len(self.right)

    @property
    def is_balanced(self) -> bool:
        """``True`` when both sides have the same number of vertices."""
        return len(self.left) == len(self.right)

    def balanced(self) -> "Biclique":
        """Return a balanced biclique by trimming the larger side.

        Which vertices are dropped is deterministic (sorted by ``repr``) so
        repeated runs produce identical output; any subset works because
        removing vertices from one side of a biclique keeps it a biclique.
        """
        k = self.side_size
        left = self.left
        right = self.right
        if len(left) > k:
            left = frozenset(sorted(left, key=repr)[:k])
        if len(right) > k:
            right = frozenset(sorted(right, key=repr)[:k])
        return Biclique(left, right)

    def is_valid_in(self, graph: BipartiteGraph) -> bool:
        """Check that the vertex pair really induces a biclique of ``graph``."""
        return is_biclique(graph, self.left, self.right)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Biclique(|A|={len(self.left)}, |B|={len(self.right)}, "
            f"side={self.side_size})"
        )


@dataclass
class SearchStats:
    """Counters collected while a solver runs.

    The counters feed the breakdown experiments of the paper: recursion
    node counts and depths (Figure 5), how often the polynomial case fired,
    how much the reductions removed, and how many vertex-centred subgraphs
    survived pruning (Table 6 discussion).
    """

    nodes: int = 0
    max_depth: int = 0
    depth_sum: int = 0
    leaf_count: int = 0
    leaf_depth_sum: int = 0
    reductions_removed: int = 0
    reductions_forced: int = 0
    polynomial_cases: int = 0
    bound_prunes: int = 0
    subgraphs_generated: int = 0
    subgraphs_pruned: int = 0
    subgraphs_searched: int = 0
    heuristic_side: int = 0
    local_heuristic_side: int = 0
    #: Wall seconds spent computing the total search order (the bridging
    #: stage's kernel-independent fixed cost, the ``bdegOrder`` overhead
    #: column of Table 6).  0.0 when the solve never reached the bridging
    #: stage, was handed a precomputed order, or hit a prepared snapshot
    #: whose memoised order made the computation free.
    order_seconds: float = 0.0
    #: Wall seconds spent locating/building prepared graph snapshots
    #: (CSR indexing plus cache lookups; the lazily derived artifacts are
    #: charged to the stage that asks for them, e.g. the bidegeneracy
    #: peel to :attr:`order_seconds`).  ≈ 0 on an engine cache hit.
    prepare_seconds: float = 0.0
    #: Engine prepared-graph cache hits/misses attributable to this
    #: solve (0/0 for backends that never touch the cache).
    prepared_cache_hits: int = 0
    prepared_cache_misses: int = 0
    #: Fault-tolerance accounting, stamped by the engine's batch layer
    #: (``MBBEngine.solve_many``), never by solvers: resubmissions this
    #: request needed beyond its first (``worker_retries``), pool
    #: rebuilds its attempts lived through (``pool_rebuilds``), and how
    #: often the shared-memory handoff degraded to re-materialising the
    #: graph from the JSON wire form (``handoff_fallbacks``).
    worker_retries: int = 0
    pool_rebuilds: int = 0
    handoff_fallbacks: int = 0
    #: Parallel-S3 accounting (``repro.api.parallel``): pool tasks the
    #: verification stage dispatched (``s3_tasks``), the worker count the
    #: parallel stage ran with (``s3_parallel_workers``, 0 when S3 ran
    #: serially), incumbent bounds sent or received over the
    #: cross-process channel (``incumbent_broadcasts``) and surviving
    #: subgraphs never dispatched because a broadcast incumbent already
    #: beat their min-side bound (``s3_pruned_by_broadcast``).
    s3_tasks: int = 0
    s3_parallel_workers: int = 0
    incumbent_broadcasts: int = 0
    s3_pruned_by_broadcast: int = 0

    def record_node(self, depth: int) -> None:
        """Record entry into a branch-and-bound node at the given depth."""
        self.nodes += 1
        self.depth_sum += depth
        if depth > self.max_depth:
            self.max_depth = depth

    def record_leaf(self, depth: int) -> None:
        """Record that a node at ``depth`` did not branch further."""
        self.leaf_count += 1
        self.leaf_depth_sum += depth

    @property
    def average_depth(self) -> float:
        """Average depth over all visited nodes (0.0 when nothing ran)."""
        if self.nodes == 0:
            return 0.0
        return self.depth_sum / self.nodes

    @property
    def average_leaf_depth(self) -> float:
        """Average depth of nodes that stopped branching."""
        if self.leaf_count == 0:
            return 0.0
        return self.leaf_depth_sum / self.leaf_count

    def merge(self, other: "SearchStats") -> None:
        """Accumulate the counters of ``other`` into this object."""
        self.nodes += other.nodes
        self.max_depth = max(self.max_depth, other.max_depth)
        self.depth_sum += other.depth_sum
        self.leaf_count += other.leaf_count
        self.leaf_depth_sum += other.leaf_depth_sum
        self.reductions_removed += other.reductions_removed
        self.reductions_forced += other.reductions_forced
        self.polynomial_cases += other.polynomial_cases
        self.bound_prunes += other.bound_prunes
        self.subgraphs_generated += other.subgraphs_generated
        self.subgraphs_pruned += other.subgraphs_pruned
        self.subgraphs_searched += other.subgraphs_searched
        self.heuristic_side = max(self.heuristic_side, other.heuristic_side)
        self.local_heuristic_side = max(
            self.local_heuristic_side, other.local_heuristic_side
        )
        self.order_seconds += other.order_seconds
        self.prepare_seconds += other.prepare_seconds
        self.prepared_cache_hits += other.prepared_cache_hits
        self.prepared_cache_misses += other.prepared_cache_misses
        self.worker_retries += other.worker_retries
        self.pool_rebuilds += other.pool_rebuilds
        self.handoff_fallbacks += other.handoff_fallbacks
        self.s3_tasks += other.s3_tasks
        self.s3_parallel_workers = max(
            self.s3_parallel_workers, other.s3_parallel_workers
        )
        self.incumbent_broadcasts += other.incumbent_broadcasts
        self.s3_pruned_by_broadcast += other.s3_pruned_by_broadcast


#: Step labels reported by the sparse framework (Table 5, column "hbvMBB").
STEP_HEURISTIC = "S1"
STEP_BRIDGE = "S2"
STEP_VERIFY = "S3"


@dataclass
class MBBResult:
    """Outcome of an MBB solver run."""

    biclique: Biclique
    optimal: bool = True
    terminated_at: Optional[str] = None
    stats: SearchStats = field(default_factory=SearchStats)
    elapsed_seconds: float = 0.0

    @property
    def side_size(self) -> int:
        """Side size of the reported (balanced) biclique."""
        return self.biclique.side_size

    @property
    def total_size(self) -> int:
        """Total number of vertices of the reported biclique."""
        return self.biclique.balanced().total_size

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        step = f", step={self.terminated_at}" if self.terminated_at else ""
        flag = "optimal" if self.optimal else "best-effort"
        return f"MBBResult(side={self.side_size}, {flag}{step})"
