"""Greedy heuristics and the ``hMBB`` stage (Algorithm 5).

The sparse framework separates heuristics from exhaustive search: a cheap
but effective heuristic finds a large balanced biclique first, the graph is
shrunk with the core-based reduction of Lemma 4, and — when the incumbent
already matches the degeneracy bound of Lemma 5 — the search terminates
without any exhaustive stage at all (the "S1" rows of Table 5).

Two greedy seeds are provided, following the paper: the global maximum
*degree* and the maximum *core number*.  Both feed the same greedy
extension routine, which grows the lagging side of the biclique by the
candidate that preserves the most opposite-side candidates.

The greedy extension and the core-seeded heuristic also exist in a
mask-native form (:func:`greedy_extend_bits` / :func:`core_heuristic_bits`)
operating on :class:`~repro.graph.bitset.IndexedBitGraph` rows; the
bridging stage runs its per-subgraph local heuristic through them so S2
never falls back to hash sets.  Both forms break ties identically (lowest
``repr``-ordered vertex wins), so the two kernels trace the same greedy
extensions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.graph.bipartite import LEFT, RIGHT, BipartiteGraph, Vertex
from repro.graph.bitset import IndexedBitGraph, core_numbers_masks, iter_bits
from repro.cores.core import core_numbers, degeneracy
from repro.mbb.context import SearchAborted, SearchContext
from repro.mbb.reductions import core_reduce
from repro.mbb.result import Biclique

VertexKey = Tuple[str, Vertex]


def greedy_extend(
    graph: BipartiteGraph,
    seed_side: str,
    seed_vertex: Vertex,
) -> Biclique:
    """Greedily grow a balanced biclique around a seed vertex.

    Starting from ``A = {seed}`` the routine alternately extends the
    lagging side, always choosing the candidate that keeps the largest
    number of candidates alive on the other side.  This is the standard
    maximum-degree greedy rule the paper uses inside ``hMBB``; it runs in
    ``O(d^2)`` around the seed where ``d`` is the seed's degree, so seeding
    it from a handful of top vertices stays near-linear overall.
    """
    if seed_side == LEFT:
        a = {seed_vertex}
        b: set = set()
        cb = set(graph.neighbors_left(seed_vertex))
        ca: set = set()
        for v in cb:
            ca.update(graph.neighbors_right(v))
        ca.discard(seed_vertex)
    else:
        b = {seed_vertex}
        a = set()
        ca = set(graph.neighbors_right(seed_vertex))
        cb = set()
        for u in ca:
            cb.update(graph.neighbors_left(u))
        cb.discard(seed_vertex)

    while True:
        extend_left = len(a) <= len(b)
        if extend_left:
            candidates, others = ca, cb
        else:
            candidates, others = cb, ca
        if not candidates:
            # Cannot extend the lagging side any further; try the other side
            # only if it is the lagging one next iteration (it will not be),
            # so stop.
            break
        best_vertex = None
        best_kept = -1
        best_repr = ""
        # Ties break on the smallest ``repr`` so the choice is deterministic
        # across interpreter runs (set order is hash order for string
        # labels) and identical to the bitset variant's index-order scan —
        # a single pass, no sorted copy of the candidate set per step.
        for vertex in candidates:
            if extend_left:
                kept = len(graph.neighbors_left(vertex) & others)
            else:
                kept = len(graph.neighbors_right(vertex) & others)
            if kept < best_kept:
                continue
            vertex_repr = repr(vertex)
            if kept > best_kept or vertex_repr < best_repr:
                best_kept = kept
                best_vertex = vertex
                best_repr = vertex_repr
        if best_vertex is None:
            break
        if extend_left:
            a.add(best_vertex)
            ca.discard(best_vertex)
            cb &= graph.neighbors_left(best_vertex)
        else:
            b.add(best_vertex)
            cb.discard(best_vertex)
            ca &= graph.neighbors_right(best_vertex)
    return Biclique.of(a, b).balanced()


def greedy_extend_bits(
    graph: IndexedBitGraph,
    seed_side: str,
    seed_index: int,
) -> Biclique:
    """Mask-native :func:`greedy_extend` over an :class:`IndexedBitGraph`.

    Same greedy rule, same tie-breaking (ascending index order equals
    ascending ``repr`` order of the labels), but candidate bookkeeping is
    four integer masks and "kept candidates" is one ``&``/``bit_count``
    per scanned vertex.  Used by the bridging stage's local heuristic.
    """
    adj_left = graph.adj_left
    adj_right = graph.adj_right
    if seed_side == LEFT:
        a = 1 << seed_index
        b = 0
        cb = adj_left[seed_index]
        ca = 0
        for j in iter_bits(cb):
            ca |= adj_right[j]
        ca &= ~a
    else:
        b = 1 << seed_index
        a = 0
        ca = adj_right[seed_index]
        cb = 0
        for i in iter_bits(ca):
            cb |= adj_left[i]
        cb &= ~b

    while True:
        extend_left = a.bit_count() <= b.bit_count()
        if extend_left:
            candidates, others, adj = ca, cb, adj_left
        else:
            candidates, others, adj = cb, ca, adj_right
        if not candidates:
            break
        best_bit = 0
        best_neighbours = 0
        best_kept = -1
        remaining = candidates
        while remaining:
            low = remaining & -remaining
            remaining ^= low
            neighbours = adj[low.bit_length() - 1] & others
            kept = neighbours.bit_count()
            if kept > best_kept:
                best_kept = kept
                best_bit = low
                best_neighbours = neighbours
        if extend_left:
            a |= best_bit
            ca &= ~best_bit
            cb = best_neighbours
        else:
            b |= best_bit
            cb &= ~best_bit
            ca = best_neighbours
    return Biclique.of(
        graph.left_labels_of(a), graph.right_labels_of(b)
    ).balanced()


def _top_vertices(
    graph: BipartiteGraph,
    score: Callable[[str, Vertex], float],
    top_r: int,
) -> Iterable[Tuple[str, Vertex]]:
    """The ``top_r`` vertices of the graph ranked by ``score`` (descending)."""
    keys = [(LEFT, u) for u in graph.left_vertices()]
    keys.extend((RIGHT, v) for v in graph.right_vertices())
    keys.sort(key=lambda key: (-score(*key), key[0], repr(key[1])))
    return keys[:top_r]


def degree_heuristic(
    graph: BipartiteGraph,
    *,
    top_r: int = 5,
    context: Optional[SearchContext] = None,
) -> Biclique:
    """Maximum-degree seeded greedy balanced biclique (first half of hMBB).

    When ``context`` is given, :meth:`~repro.mbb.context.SearchContext.
    checkpoint` is polled before every seed extension so engine deadlines
    and cancellation hooks cut the heuristic stage short, and every seed's
    result is offered to the incumbent as soon as it is found — work done
    by completed seeds survives an abort on a later one.
    """

    def score(side: str, label: Vertex) -> float:
        return graph.degree_left(label) if side == LEFT else graph.degree_right(label)

    best = Biclique.empty()
    for side, label in _top_vertices(graph, score, top_r):
        if context is not None:
            context.checkpoint()
        candidate = greedy_extend(graph, side, label)
        if candidate.side_size > best.side_size:
            best = candidate
        if context is not None:
            context.offer_biclique(candidate)
    return best


def core_heuristic(
    graph: BipartiteGraph,
    *,
    top_r: int = 5,
    cores: Optional[Dict[VertexKey, int]] = None,
    context: Optional[SearchContext] = None,
) -> Biclique:
    """Maximum-core-number seeded greedy balanced biclique (second half of hMBB)."""
    if cores is None:
        cores = core_numbers(graph)

    def score(side: str, label: Vertex) -> float:
        return cores.get((side, label), 0)

    best = Biclique.empty()
    for side, label in _top_vertices(graph, score, top_r):
        if context is not None:
            context.checkpoint()
        candidate = greedy_extend(graph, side, label)
        if candidate.side_size > best.side_size:
            best = candidate
        if context is not None:
            context.offer_biclique(candidate)
    return best


def core_heuristic_bits(
    graph: IndexedBitGraph,
    *,
    top_r: int = 5,
    cores: Optional[Tuple[List[int], List[int]]] = None,
) -> Biclique:
    """Mask-native :func:`core_heuristic` over a whole :class:`IndexedBitGraph`.

    ``cores`` is the ``(core_left, core_right)`` pair produced by
    :func:`~repro.graph.bitset.core_numbers_masks`; passing the pair the
    caller already computed for its degeneracy test avoids a second peel.
    Seeds are ranked exactly like the set-based version — descending core
    number, left side first, then ``repr`` of the label — so both kernels
    extend the same seeds.
    """
    if cores is None:
        cores = core_numbers_masks(graph)
    core_left, core_right = cores
    # A bitgraph's indices are already ``repr``-sorted per side and the
    # side markers compare as "L" < "R", so ``(-core, side, index)`` ranks
    # exactly like the set-based ``(-score, side, repr(label))`` key
    # without building a repr string per vertex.
    keys = [(-core, LEFT, i) for i, core in enumerate(core_left)]
    keys.extend((-core, RIGHT, j) for j, core in enumerate(core_right))
    keys.sort()
    best = Biclique.empty()
    for _, side, index in keys[:top_r]:
        candidate = greedy_extend_bits(graph, side, index)
        if candidate.side_size > best.side_size:
            best = candidate
    return best


@dataclass
class HMBBOutcome:
    """Result of the heuristic-and-reduction stage (Algorithm 5)."""

    best: Biclique
    reduced_graph: BipartiteGraph
    proven_optimal: bool

    @property
    def exhausted(self) -> bool:
        """True when the reduction removed the entire residual graph."""
        return self.reduced_graph.num_vertices == 0


def h_mbb(
    graph: BipartiteGraph,
    *,
    top_r: int = 5,
    context: Optional[SearchContext] = None,
) -> HMBBOutcome:
    """Algorithm 5: heuristics, Lemma 4 reductions and Lemma 5 early exit.

    Returns the best balanced biclique found, the residual graph after the
    core-based reductions, and whether the Lemma 5 condition already proves
    the incumbent optimal.

    Lemma 5 states that a balanced biclique with side size ``k`` forces
    degeneracy at least ``k``, so ``δ(G) <= |A*|`` certifies the incumbent
    ``(A*, B*)`` optimal.  Crucially the degeneracy must be taken on the
    graph *before* it is shrunk to the ``(best_side + 1)``-core: a nonempty
    ``(k + 1)``-core always has degeneracy at least ``k + 1``, so comparing
    the post-reduction degeneracy against ``best_side`` (as an earlier
    revision of this function did) can never succeed and the early exit was
    dead code.  With the pre-reduction comparison, S1 can terminate the
    whole search while the residual graph is still nonempty.

    Budgets are enforced: every greedy seed polls ``context.checkpoint()``,
    so an engine deadline or cancellation hook stops the stage between two
    seed extensions.  On abort the incumbent found so far is returned with
    ``proven_optimal=False`` and ``context.aborted`` set — callers such as
    :func:`repro.mbb.sparse.hbv_mbb` report ``optimal=False`` from it.
    """
    if context is None:
        context = SearchContext()
    try:
        return _h_mbb(graph, top_r, context)
    except SearchAborted:
        return HMBBOutcome(context.best, graph, False)


def _h_mbb(
    graph: BipartiteGraph, top_r: int, context: SearchContext
) -> HMBBOutcome:
    """Budget-unaware body of :func:`h_mbb` (checkpoints may raise)."""
    # Degree-based heuristic; Lemma 5 check on the *input* graph.
    best = degree_heuristic(graph, top_r=top_r, context=context)
    context.offer_biclique(best)
    context.stats.heuristic_side = max(
        context.stats.heuristic_side, context.best_side
    )
    if context.best_side > 0 and degeneracy(graph) <= context.best_side:
        return HMBBOutcome(context.best, graph, True)
    reduced = core_reduce(graph, context.best_side)
    if reduced.num_vertices == 0:
        return HMBBOutcome(context.best, reduced, True)

    # Core-based heuristic on the reduced graph; Lemma 5 check against the
    # degeneracy of that (pre-second-reduction) graph, then reduce again.
    # The heuristic offers its seeds to the context as it goes, so an
    # improvement is detected by comparing side sizes, not by the offer.
    cores = core_numbers(reduced)
    side_before = context.best_side
    improved = core_heuristic(reduced, top_r=top_r, cores=cores, context=context)
    context.offer_biclique(improved)
    if context.best_side > side_before:
        context.stats.heuristic_side = max(
            context.stats.heuristic_side, context.best_side
        )
        if max(cores.values(), default=0) <= context.best_side:
            return HMBBOutcome(context.best, reduced, True)
        reduced = core_reduce(reduced, context.best_side)
        if reduced.num_vertices == 0:
            return HMBBOutcome(context.best, reduced, True)

    return HMBBOutcome(context.best, reduced, False)
